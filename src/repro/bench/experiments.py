"""Per-table/figure experiment definitions (see DESIGN.md §4).

Each ``exp_*`` function runs one paper experiment end to end and returns an
:class:`ExperimentResult` carrying the measured cells, a rendered paper-style
report, and the shape checks the paper's claims imply. Benchmarks assert the
checks; EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro.bench import harness, report
from repro.bench.harness import BenchEnvironment, Cell, cell_lookup
from repro.cluster import paper_interference
from repro.engine import EngineKind, ReferenceEngine
from repro.graph import in_degree_stats, out_degree_stats
from repro.lang import GTravel
from repro.workloads import PAPER_TABLE2, suspicious_user_query

SYNC = EngineKind.SYNC.value
ASYNC = EngineKind.ASYNC.value
GT = EngineKind.GRAPHTREK.value

#: Table I of the paper: 8-step traversal on RMAT-1, seconds.
PAPER_TABLE1 = {
    (SYNC, 2): 47.8, (ASYNC, 2): 63.7, (GT, 2): 45.2,
    (SYNC, 4): 28.5, (ASYNC, 4): 33.1, (GT, 4): 22.5,
    (SYNC, 8): 17.1, (ASYNC, 8): 20.6, (GT, 8): 13.4,
    (SYNC, 16): 10.3, (ASYNC, 16): 12.1, (GT, 16): 8.3,
    (SYNC, 32): 7.2, (ASYNC, 32): 7.4, (GT, 32): 5.6,
}

#: Table III of the paper: 6-step Darshan audit on 32 servers, milliseconds.
PAPER_TABLE3_MS = {SYNC: 3575.0, ASYNC: 4159.0, GT: 2839.0}


@dataclass
class ShapeCheck:
    """One paper claim, evaluated against the measured cells."""

    name: str
    passed: bool
    detail: str


@dataclass
class ExperimentResult:
    experiment: str
    cells: list[Cell] = field(default_factory=list)
    rendered: str = ""
    checks: list[ShapeCheck] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> list[ShapeCheck]:
        return [c for c in self.checks if not c.passed]

    def payload(self) -> dict:
        return {
            "experiment": self.experiment,
            "cells": harness.cells_payload(self.cells),
            "checks": [c.__dict__ for c in self.checks],
            "extra": self.extra,
        }


def _ratio(lookup, engine: str, baseline: str, n: int) -> float:
    return lookup[(engine, n)].elapsed / lookup[(baseline, n)].elapsed


# -- Table I ------------------------------------------------------------------


def exp_table1(env: Optional[BenchEnvironment] = None) -> ExperimentResult:
    """Table I: Sync-GT / Async-GT / GraphTrek, 8-step traversal on RMAT-1."""
    env = env or BenchEnvironment.from_env()
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    plan = harness.kstep_plan(env, 8)
    cells = harness.run_engine_comparison(graph, plan, env.servers)
    lookup = cell_lookup(cells)
    n_max, n_min = max(env.servers), min(env.servers)
    checks = [
        ShapeCheck(
            "async_gt_worst_at_small_scale",
            _ratio(lookup, ASYNC, SYNC, n_min) > 1.05,
            f"Async-GT/Sync at {n_min} servers = {_ratio(lookup, ASYNC, SYNC, n_min):.2f} "
            "(paper: 1.33)",
        ),
        ShapeCheck(
            "async_gt_penalty_shrinks_with_scale",
            _ratio(lookup, ASYNC, SYNC, n_max) < _ratio(lookup, ASYNC, SYNC, n_min),
            f"Async-GT/Sync {n_min}→{n_max} servers: "
            f"{_ratio(lookup, ASYNC, SYNC, n_min):.2f} → {_ratio(lookup, ASYNC, SYNC, n_max):.2f} "
            "(paper: 1.33 → 1.03)",
        ),
        ShapeCheck(
            "graphtrek_best_at_scale",
            _ratio(lookup, GT, SYNC, n_max) < 0.95,
            f"GraphTrek/Sync at {n_max} servers = {_ratio(lookup, GT, SYNC, n_max):.2f} "
            "(paper: 0.78)",
        ),
        ShapeCheck(
            "graphtrek_advantage_grows_with_servers",
            _ratio(lookup, GT, SYNC, n_max) < _ratio(lookup, GT, SYNC, n_min),
            f"GraphTrek/Sync {n_min}→{n_max} servers: "
            f"{_ratio(lookup, GT, SYNC, n_min):.2f} → {_ratio(lookup, GT, SYNC, n_max):.2f} "
            "(paper: 0.95 → 0.78)",
        ),
        ShapeCheck(
            "graphtrek_never_worse_than_async_gt",
            all(_ratio(lookup, GT, ASYNC, n) <= 1.0 for n in env.servers),
            "optimizations never hurt the plain async engine",
        ),
    ]
    rendered = report.engine_table(
        f"Table I — 8-step traversal on RMAT-1 (scale={env.scale})",
        cells, env.servers, [SYNC, ASYNC, GT],
        paper={k: v for k, v in PAPER_TABLE1.items() if k[1] in env.servers},
    )
    rendered += "\n\n" + report.speedup_table(
        "relative to Sync-GT", cells, env.servers, SYNC, [ASYNC, GT]
    )
    return ExperimentResult("table1", cells, rendered, checks)


# -- Figure 7 --------------------------------------------------------------------


def exp_fig7(env: Optional[BenchEnvironment] = None) -> ExperimentResult:
    """Fig. 7: per-server visit breakdown of an 8-step GraphTrek run."""
    env = env or BenchEnvironment.from_env()
    nservers = max(env.servers)
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    plan = harness.kstep_plan(env, 8)
    cell = harness.run_cell(graph, plan, EngineKind.GRAPHTREK, nservers)
    total = cell.real_io_visits + cell.combined_visits + cell.redundant_visits
    # merging intensity vs storage weight per server (the paper found the
    # byte-heavy hub servers merge the most)
    per_server = cell.per_server
    combined_ratio = {
        s: b.get("combined", 0) / max(1, b.get("real", 0)) for s, b in per_server.items()
    }
    heavy = sorted(per_server, key=lambda s: -per_server[s].get("combined", 0))[: nservers // 4]
    light = sorted(per_server, key=lambda s: per_server[s].get("combined", 0))[: nservers // 4]
    heavy_mean = float(np.mean([combined_ratio[s] for s in heavy])) if heavy else 0.0
    light_mean = float(np.mean([combined_ratio[s] for s in light])) if light else 0.0
    checks = [
        ShapeCheck(
            "redundant_visits_dominate",
            cell.redundant_visits > cell.real_io_visits,
            f"redundant={cell.redundant_visits} vs real={cell.real_io_visits} "
            "(paper: 'redundant vertex visits actually dominate the majority of "
            "received requests')",
        ),
        ShapeCheck(
            "merging_concentrated_on_loaded_servers",
            heavy_mean > light_mean,
            f"combined/real on merge-heavy servers {heavy_mean:.2f} vs light {light_mean:.2f}",
        ),
        ShapeCheck(
            "all_visits_accounted",
            total == sum(sum(b.values()) for b in per_server.values()),
            "real + combined + redundant equals requests received",
        ),
    ]
    rendered = report.visit_breakdown_table(
        f"Fig. 7 — visit statistics, 8-step GraphTrek on {nservers} servers", cell
    )
    return ExperimentResult("fig7", [cell], rendered, checks)


# -- Figures 8, 9, 10 ---------------------------------------------------------------


def exp_step_sweep(steps: int, env: Optional[BenchEnvironment] = None) -> ExperimentResult:
    """Figs. 8/9/10: Sync-GT vs GraphTrek elapsed time by server count."""
    env = env or BenchEnvironment.from_env()
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    plan = harness.kstep_plan(env, steps)
    cells = harness.run_engine_comparison(
        graph, plan, env.servers, engines=(EngineKind.SYNC, EngineKind.GRAPHTREK)
    )
    lookup = cell_lookup(cells)
    n_max, n_min = max(env.servers), min(env.servers)
    ratio_small = _ratio(lookup, GT, SYNC, n_min)
    ratio_large = _ratio(lookup, GT, SYNC, n_max)
    checks = [
        ShapeCheck(
            "relative_performance_improves_with_servers",
            ratio_large <= ratio_small + 0.02,
            f"GraphTrek/Sync {n_min}→{n_max}: {ratio_small:.2f} → {ratio_large:.2f}",
        ),
    ]
    if steps <= 2:
        checks.append(
            ShapeCheck(
                "short_traversals_near_parity_or_sync_wins_small",
                ratio_small > 0.90,
                f"2-step at {n_min} servers: GraphTrek/Sync = {ratio_small:.2f} "
                "(paper: sync slightly better)",
            )
        )
    if steps >= 8:
        checks.append(
            ShapeCheck(
                "deep_traversals_favor_graphtrek",
                ratio_large < 0.9,
                f"8-step at {n_max} servers: GraphTrek/Sync = {ratio_large:.2f} "
                "(paper: 0.78, '24% improvement')",
            )
        )
    fig = {2: "Fig. 8", 4: "Fig. 9", 8: "Fig. 10"}.get(steps, f"{steps}-step")
    rendered = report.engine_table(
        f"{fig} — {steps}-step traversal on RMAT-1 (scale={env.scale})",
        cells, env.servers, [SYNC, GT],
    )
    return ExperimentResult(f"fig_steps_{steps}", cells, rendered, checks)


# -- Figure 11 -------------------------------------------------------------------------


def exp_fig11(env: Optional[BenchEnvironment] = None, runs: int = 3) -> ExperimentResult:
    """Fig. 11: 8-step traversal with simulated external stragglers.

    Interference: three stragglers at steps 1, 3 and 7 on three selected
    servers (round-robin), each a budget of delayed vertex accesses. The
    delay budget is scaled to this graph size (the paper's 500×50 ms targets
    a 2^20-vertex deployment); see EXPERIMENTS.md. Each bar averages
    ``runs`` traversals from different start vertices, as the paper averages
    three runs.
    """
    env = env or BenchEnvironment.from_env()
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    delay, count = 1e-3, 500

    def interference():
        return paper_interference(servers=(0, 1, 2), levels=(1, 3, 7), delay=delay, count=count)

    averaged: list[Cell] = []
    for nservers in env.servers:
        for engine in (EngineKind.SYNC, EngineKind.GRAPHTREK):
            samples = []
            for pick in range(runs):
                plan = harness.kstep_plan(env, 8, pick=7 + pick)
                samples.append(
                    harness.run_cell(
                        graph, plan, engine, nservers, interference_factory=interference
                    )
                )
            mean = samples[0]
            mean.elapsed = float(np.mean([s.elapsed for s in samples]))
            averaged.append(mean)
    lookup = cell_lookup(averaged)
    n_max = max(env.servers)
    speedup = lookup[(SYNC, n_max)].elapsed / lookup[(GT, n_max)].elapsed
    checks = [
        ShapeCheck(
            "graphtrek_absorbs_stragglers_at_scale",
            speedup > 1.4,
            f"Sync/GraphTrek at {n_max} servers under interference = {speedup:.2f}x "
            "(paper: ~2x)",
        ),
        ShapeCheck(
            "graphtrek_never_slower_under_interference",
            all(
                lookup[(GT, n)].elapsed <= lookup[(SYNC, n)].elapsed * 1.05
                for n in env.servers
            ),
            "asynchrony helps (or at worst matches) at every scale",
        ),
    ]
    rendered = report.engine_table(
        f"Fig. 11 — 8-step on RMAT-1 with external stragglers "
        f"(delay={delay * 1000:.0f} ms x {count}, steps 1/3/7; mean of {runs} runs)",
        averaged, env.servers, [SYNC, GT],
    )
    return ExperimentResult(
        "fig11", averaged, rendered, checks, extra={"delay": delay, "count": count}
    )


# -- Table II -------------------------------------------------------------------------------


def exp_table2() -> ExperimentResult:
    """Table II: statistics of the rich-metadata graph (ratio fidelity)."""
    md = harness.darshan_graph()
    row = md.stats.row()
    ours = md.stats.ratios()
    paper_ratios = {k: v / PAPER_TABLE2["users"] for k, v in PAPER_TABLE2.items()}
    out_stats = out_degree_stats(md.graph)
    in_stats = in_degree_stats(md.graph)
    checks = [
        ShapeCheck(
            "entity_hierarchy_order",
            row["users"] < row["jobs"] < row["executions"] and row["files"] > row["users"],
            f"users({row['users']}) < jobs({row['jobs']}) < executions({row['executions']})",
        ),
        ShapeCheck(
            "edges_exceed_executions",
            row["edges"] > row["executions"],
            f"edges({row['edges']}) > executions({row['executions']}) "
            "(paper: 239.8M > 123.4M)",
        ),
        ShapeCheck(
            "power_law_in_degree",
            in_stats.maximum > 10 * max(1.0, in_stats.p50),
            f"max in-degree {in_stats.maximum} vs median {in_stats.p50} "
            "(paper: 'a small-world graph with a power-law distribution')",
        ),
    ]
    rendered = report.kv_table(
        "Table II — statistics of the rich-metadata graph (scaled)",
        {
            **row,
            "per-user jobs (ours / paper)": f"{ours['jobs']:.1f} / {paper_ratios['jobs']:.1f}",
            "edges per entity (ours / paper)": (
                f"{row['edges'] / max(1, sum(v for k, v in row.items() if k != 'edges')):.2f} / "
                f"{PAPER_TABLE2['edges'] / (PAPER_TABLE2['users'] + PAPER_TABLE2['jobs'] + PAPER_TABLE2['executions'] + PAPER_TABLE2['files']):.2f}"
            ),
            "max in-degree": in_stats.maximum,
            "out-degree gini": f"{out_stats.gini:.2f}",
        },
    )
    return ExperimentResult("table2", [], rendered, checks, extra={"row": row})


# -- Table III ---------------------------------------------------------------------------------


def exp_table3(nservers: int = 32) -> ExperimentResult:
    """Table III: the 6-step suspicious-user audit on the Darshan graph."""
    md = harness.darshan_graph()
    users_by_jobs = sorted(
        md.user_ids, key=lambda u: -md.graph.out_degree(u, "run")
    )
    plan = suspicious_user_query(users_by_jobs[3]).compile()
    expected = ReferenceEngine(md.graph).run(plan)
    cells = []
    for engine in harness.ENGINE_ORDER:
        cell = harness.run_cell(md.graph, plan, engine, nservers, block_cache_blocks=0)
        cells.append(cell)
    lookup = cell_lookup(cells)
    checks = [
        ShapeCheck(
            "async_gt_worst",
            lookup[(ASYNC, nservers)].elapsed > lookup[(SYNC, nservers)].elapsed,
            f"Async-GT {lookup[(ASYNC, nservers)].elapsed * 1000:.0f} ms > "
            f"Sync {lookup[(SYNC, nservers)].elapsed * 1000:.0f} ms (paper: 4159 > 3575)",
        ),
        ShapeCheck(
            "graphtrek_at_least_matches_sync",
            lookup[(GT, nservers)].elapsed <= lookup[(SYNC, nservers)].elapsed * 1.02,
            f"GraphTrek {lookup[(GT, nservers)].elapsed * 1000:.0f} ms vs "
            f"Sync {lookup[(SYNC, nservers)].elapsed * 1000:.0f} ms "
            "(paper: 2839 < 3575; our margin is smaller — see EXPERIMENTS.md)",
        ),
    ]
    rendered = report.engine_table(
        f"Table III — Darshan audit query on {nservers} servers "
        f"(paper: Sync 3575 ms / Async 4159 ms / GraphTrek 2839 ms)",
        cells, [nservers], [SYNC, ASYNC, GT],
    )
    return ExperimentResult(
        "table3",
        cells,
        rendered,
        checks,
        extra={"result_size": len(expected.vertices), "paper_ms": PAPER_TABLE3_MS},
    )


# -- ablations (beyond the paper's tables; §V mechanisms individually) -------------------------


def exp_ablation_optimizations(env: Optional[BenchEnvironment] = None) -> ExperimentResult:
    """Attribute GraphTrek's win to its mechanisms: cache / merge / schedule."""
    from repro.engine import EngineOptions, graphtrek_options, plain_async_options

    env = env or BenchEnvironment.from_env()
    nservers = max(env.servers)
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    plan = harness.kstep_plan(env, 8)
    variants: dict[str, EngineOptions] = {
        "plain-async": plain_async_options(),
        "cache-only": plain_async_options(cache_enabled=True),
        "merge-only": plain_async_options(merge_enabled=True),
        "sched-only": plain_async_options(priority_schedule=True),
        "graphtrek": graphtrek_options(),
    }
    rows = {}
    cells = []
    for name, opts in variants.items():
        cell = harness.run_cell(graph, plan, opts, nservers)
        cell.engine = name
        cells.append(cell)
        rows[name] = report.fmt_time(cell.elapsed)
    full = next(c for c in cells if c.engine == "graphtrek")
    plain = next(c for c in cells if c.engine == "plain-async")
    cache_only = next(c for c in cells if c.engine == "cache-only")
    checks = [
        ShapeCheck(
            "cache_is_the_dominant_optimization",
            cache_only.elapsed < plain.elapsed,
            f"cache-only {report.fmt_time(cache_only.elapsed)} vs plain "
            f"{report.fmt_time(plain.elapsed)}",
        ),
        ShapeCheck(
            "all_optimizations_beat_plain_async",
            full.elapsed < plain.elapsed,
            f"graphtrek {report.fmt_time(full.elapsed)} vs plain "
            f"{report.fmt_time(plain.elapsed)}",
        ),
    ]
    rendered = report.kv_table(
        f"Ablation — asynchronous optimizations, 8-step on {nservers} servers", rows
    )
    return ExperimentResult("ablation_opts", cells, rendered, checks)


def exp_ablation_planner(env: Optional[BenchEnvironment] = None) -> ExperimentResult:
    """Planner ablation: off / rules / cost on the two motivating queries.

    The Darshan audit scan is written forwards from the huge Execution set;
    the cost planner reverses it to start from the far smaller filtered File
    set. The 8-step RMAT chain has an unfiltered final hop, which the rule
    planner short-circuits (no final-level visits).
    """
    from repro.engine import EngineOptions, graphtrek_options
    from repro.workloads import audit_scan_query

    env = env or BenchEnvironment.from_env()
    nservers = max(env.servers)
    audit_graph = harness.darshan_graph(
        scale_users=max(16, env.scale * 8), seed=42
    ).graph
    workloads = {
        "audit": (audit_graph, audit_scan_query().compile()),
        "kstep8": (
            harness.rmat1_graph(env.scale, env.edge_factor, env.seed),
            harness.kstep_plan(env, 8),
        ),
    }
    modes = ("off", "rules", "cost")
    rows: dict[str, str] = {}
    cells = []
    for workload, (graph, plan) in workloads.items():
        for mode in modes:
            opts: EngineOptions = graphtrek_options(planner=mode)
            cell = harness.run_cell(graph, plan, opts, nservers)
            cell.engine = f"{workload}-{mode}"
            cells.append(cell)
            visits = (
                cell.real_io_visits + cell.combined_visits + cell.redundant_visits
            )
            rows[cell.engine] = (
                f"{report.fmt_time(cell.elapsed)}  ({visits} visits)"
            )
    by = {c.engine: c for c in cells}

    def _visits(cell: Cell) -> int:
        return cell.real_io_visits + cell.combined_visits + cell.redundant_visits

    checks = [
        ShapeCheck(
            "audit_cost_fewer_visits",
            _visits(by["audit-cost"]) < _visits(by["audit-off"]),
            f"audit cost {_visits(by['audit-cost'])} visits < "
            f"off {_visits(by['audit-off'])}",
        ),
        ShapeCheck(
            "audit_cost_faster",
            by["audit-cost"].elapsed < by["audit-off"].elapsed,
            f"audit cost {report.fmt_time(by['audit-cost'].elapsed)} vs off "
            f"{report.fmt_time(by['audit-off'].elapsed)}",
        ),
        ShapeCheck(
            "kstep_cost_faster",
            by["kstep8-cost"].elapsed < by["kstep8-off"].elapsed,
            f"kstep8 cost {report.fmt_time(by['kstep8-cost'].elapsed)} vs off "
            f"{report.fmt_time(by['kstep8-off'].elapsed)}",
        ),
        ShapeCheck(
            "rules_never_slower_than_off",
            by["audit-rules"].elapsed <= by["audit-off"].elapsed * 1.02
            and by["kstep8-rules"].elapsed <= by["kstep8-off"].elapsed * 1.02,
            f"audit rules {report.fmt_time(by['audit-rules'].elapsed)} vs off "
            f"{report.fmt_time(by['audit-off'].elapsed)}; kstep8 rules "
            f"{report.fmt_time(by['kstep8-rules'].elapsed)} vs off "
            f"{report.fmt_time(by['kstep8-off'].elapsed)}",
        ),
    ]
    rendered = report.kv_table(
        f"Ablation — query planner (off/rules/cost) on {nservers} servers", rows
    )
    return ExperimentResult("ablation_planner", cells, rendered, checks)


def exp_concurrent_traversals(
    env: Optional[BenchEnvironment] = None, depths: tuple[int, ...] = (2, 4, 6, 8)
) -> ExperimentResult:
    """Concurrent-workload experiment (motivated by the paper's §I: "the
    interferences among traversals easily create stragglers").

    A heterogeneous mix — one traversal per depth in ``depths``, different
    start vertices — runs simultaneously on one cluster. The metric is each
    traversal's *latency inflation* versus running alone: under the
    synchronous engine a short query's barrier steps wait behind servers
    busy with the deep queries, while GraphTrek's smallest-step-first
    scheduling lets it cut through.
    """
    from repro.cluster import Cluster, ClusterConfig

    env = env or BenchEnvironment.from_env()
    # mid-sized deployment: interference is strongest when servers are busy
    nservers = sorted(env.servers)[len(env.servers) // 2]
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    plans = [harness.kstep_plan(env, d, pick=7 + i) for i, d in enumerate(depths)]
    rows: dict[str, str] = {}
    slowdowns: dict[str, list[float]] = {}
    cells = []
    for engine in (EngineKind.SYNC, EngineKind.GRAPHTREK):
        solo = []
        for plan in plans:
            cluster = Cluster.build(graph, ClusterConfig(nservers=nservers, engine=engine))
            solo.append(cluster.traverse(plan).stats.elapsed)
        cluster = Cluster.build(graph, ClusterConfig(nservers=nservers, engine=engine))
        outcomes = cluster.traverse_many(list(plans))
        concurrent = [o.stats.elapsed for o in outcomes]
        slowdowns[engine.value] = [c / s for c, s in zip(concurrent, solo)]
        rows[f"{engine.value} makespan"] = report.fmt_time(max(concurrent))
        rows[f"{engine.value} max slowdown"] = f"{max(slowdowns[engine.value]):.2f}x"
        rows[f"{engine.value} mean slowdown"] = f"{np.mean(slowdowns[engine.value]):.2f}x"
        cell = harness.Cell.from_outcome(engine, nservers, outcomes[-1])
        cell.elapsed = max(concurrent)
        cell.metrics = cluster.metrics_snapshot()
        cells.append(cell)
    checks = [
        ShapeCheck(
            "graphtrek_bounds_interference_on_short_queries",
            max(slowdowns[GT]) < max(slowdowns[SYNC]),
            f"worst-case latency inflation: GraphTrek {max(slowdowns[GT]):.2f}x "
            f"vs Sync {max(slowdowns[SYNC]):.2f}x (paper §I: interference among "
            "traversals creates stragglers and idling at every barrier)",
        ),
        ShapeCheck(
            "graphtrek_lower_mean_inflation",
            float(np.mean(slowdowns[GT])) < float(np.mean(slowdowns[SYNC])),
            f"mean inflation: GraphTrek {np.mean(slowdowns[GT]):.2f}x vs "
            f"Sync {np.mean(slowdowns[SYNC]):.2f}x",
        ),
    ]
    rendered = report.kv_table(
        f"Concurrent workload — depths {depths} running simultaneously on "
        f"{nservers} servers (inflation vs running alone)", rows
    )
    return ExperimentResult(
        "concurrent", cells, rendered, checks, extra={"slowdowns": slowdowns},
    )


def exp_ablation_layout(nservers: int = 16) -> ExperimentResult:
    """Storage-layout ablation (paper §IV-B): "storing all the edges of one
    vertex together based on their type will provide better performance" —
    grouped (paper) vs interleaved (generic column layout) edge keys, on the
    heterogeneous Darshan graph where label-selective scans matter."""
    from repro.cluster import Cluster, ClusterConfig

    md = harness.darshan_graph()
    users_by_jobs = sorted(md.user_ids, key=lambda u: -md.graph.out_degree(u, "run"))
    plan = suspicious_user_query(users_by_jobs[3]).compile()
    rows = {}
    cells = []
    elapsed = {}
    for layout in ("grouped", "interleaved"):
        cluster = Cluster.build(
            md.graph,
            ClusterConfig(
                nservers=nservers,
                engine=EngineKind.GRAPHTREK,
                edge_layout=layout,
                block_cache_blocks=0,  # cold: layout differences are I/O
            ),
        )
        outcome = cluster.traverse(plan)
        cell = harness.Cell.from_outcome(EngineKind.GRAPHTREK, nservers, outcome)
        cell.engine = f"GraphTrek/{layout}"
        cell.metrics = cluster.metrics_snapshot()
        cells.append(cell)
        elapsed[layout] = outcome.stats.elapsed
        rows[f"{layout} layout"] = report.fmt_time(outcome.stats.elapsed)
    rows["interleaved / grouped"] = f"{elapsed['interleaved'] / elapsed['grouped']:.2f}x"
    checks = [
        ShapeCheck(
            "grouped_layout_wins_label_selective_scans",
            elapsed["grouped"] < elapsed["interleaved"],
            f"grouped {report.fmt_time(elapsed['grouped'])} vs interleaved "
            f"{report.fmt_time(elapsed['interleaved'])} (paper §IV-B: grouping "
            "edges by type makes edge iteration sequential)",
        ),
    ]
    rendered = report.kv_table(
        f"Ablation — edge-key layout, Darshan audit query on {nservers} servers", rows
    )
    return ExperimentResult("ablation_layout", cells, rendered, checks)


def exp_ablation_partitioning(env: Optional[BenchEnvironment] = None) -> ExperimentResult:
    """§VI discussion: partitioning strategy vs straggler persistence."""
    from repro.partition import HashEdgeCut, evaluate_partition, greedy_vertex_cut
    from repro.partition.edge_cut import GreedyBalancedEdgeCut

    env = env or BenchEnvironment.from_env()
    nservers = max(env.servers)
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    plan = harness.kstep_plan(env, 8)
    cells = []
    for name, part in (("hash", "hash"), ("greedy", "greedy")):
        for engine in (EngineKind.SYNC, EngineKind.GRAPHTREK):
            cell = harness.run_cell(graph, plan, engine, nservers, partitioner=part)
            cell.engine = f"{engine.value}/{name}"
            cells.append(cell)
    hash_report = evaluate_partition(graph, HashEdgeCut(nservers))
    greedy_report = evaluate_partition(graph, GreedyBalancedEdgeCut(nservers).fit(graph))
    vc = greedy_vertex_cut(graph, nservers)
    by_name = {c.engine: c for c in cells}
    sync_gain = (
        by_name[f"{SYNC}/hash"].elapsed - by_name[f"{SYNC}/greedy"].elapsed
    ) / by_name[f"{SYNC}/hash"].elapsed
    checks = [
        ShapeCheck(
            "greedy_balances_better",
            greedy_report.edge_imbalance <= hash_report.edge_imbalance,
            f"edge imbalance: hash {hash_report.edge_imbalance:.2f} vs "
            f"greedy {greedy_report.edge_imbalance:.2f}",
        ),
        ShapeCheck(
            "async_still_helps_under_best_partitioning",
            by_name[f"{GT}/greedy"].elapsed < by_name[f"{SYNC}/greedy"].elapsed,
            "even with the balanced partition, stragglers persist and "
            "asynchrony wins (paper §VI: 'even with the best load-balanced "
            "strategy, stragglers will still exist')",
        ),
    ]
    rendered = report.kv_table(
        f"Ablation — partitioning, 8-step on {nservers} servers",
        {
            **{c.engine: report.fmt_time(c.elapsed) for c in cells},
            "hash edge-imbalance": f"{hash_report.edge_imbalance:.2f}",
            "greedy edge-imbalance": f"{greedy_report.edge_imbalance:.2f}",
            "vertex-cut replication factor": f"{vc.replication_factor:.2f}",
            "sync gain from balancing": f"{sync_gain * 100:.1f}%",
        },
    )
    return ExperimentResult("ablation_partition", cells, rendered, checks)


# -- Chaos (robustness) -------------------------------------------------------


def exp_chaos(
    env: Optional[BenchEnvironment] = None,
    *,
    fault_seed: int = 0,
    plans: int = 10,
    exec_timeout: Optional[float] = None,
    max_restarts: Optional[int] = None,
) -> ExperimentResult:
    """Chaos differential: ``plans`` sampled fault plans (seeds
    ``fault_seed..fault_seed+plans-1``) against the fault-free baseline on
    the metadata graph, every third plan with a mid-traversal server crash.

    Each run must either reproduce the baseline result set exactly or fail
    cleanly with ``TraversalFailed``; on top, one plan is rerun to assert the
    ``net.*``/``faults.*`` counter snapshot is deterministic.
    """
    from repro.faults.chaos import (
        chaos_check,
        chaos_coordinator_config,
        run_fault_free,
        run_under_faults,
    )
    from repro.faults.plan import sample_fault_plan

    env = env or BenchEnvironment.from_env()
    md = harness.darshan_graph(scale_users=12, seed=env.seed)
    query = (
        GTravel.v(*md.user_ids).e("run").e("hasExecutions").e("read").compile()
    )
    baseline, duration = run_fault_free(md.graph, query)
    cc = chaos_coordinator_config(duration)
    if exec_timeout is not None:
        cc = replace(cc, exec_timeout=exec_timeout, watch_interval=exec_timeout / 4.0)
    if max_restarts is not None:
        cc = replace(cc, max_restarts=max_restarts)

    seeds = list(range(fault_seed, fault_seed + plans))
    rows: dict = {}
    outcomes = []
    for i, seed in enumerate(seeds):
        outcome = chaos_check(
            md.graph, query, seed=seed, crash=i % 3 == 1, coordinator_config=cc
        )
        outcomes.append(outcome)
        verdict = "match" if outcome.matched else (
            "clean-fail" if outcome.failed_cleanly else "WRONG RESULT"
        )
        retries = sum(
            v for k, v in outcome.net_counters.items() if k.startswith("net.retries")
        )
        crashes = sum(
            v for k, v in outcome.net_counters.items() if k.startswith("faults.crashes")
        )
        rows[f"plan seed {seed}"] = (
            f"{verdict}  (retries={retries}, crashes={crashes})"
        )

    # Determinism probe: replay the first crash plan twice, compare snapshots.
    probe = sample_fault_plan(
        seeds[1], nservers=3, crash_window=(0.2 * duration, 3.0 * duration)
    )
    reruns = [
        run_under_faults(md.graph, query, probe, coordinator_config=cc)
        for _ in range(2)
    ]
    deterministic = reruns[0] == reruns[1]

    checks = [
        ShapeCheck(
            "chaos_differential_contract",
            all(o.ok for o in outcomes),
            f"{sum(o.matched for o in outcomes)}/{len(outcomes)} matched, "
            f"{sum(o.failed_cleanly for o in outcomes)} failed cleanly, "
            f"{sum(not o.ok for o in outcomes)} violated the contract",
        ),
        ShapeCheck(
            "crash_plans_actually_crashed",
            any(
                any(k.startswith("faults.crashes") for k in o.net_counters)
                for o in outcomes
                if o.plan.crashes
            ),
            # a sampled crash time can land past the faulty run's completion,
            # so require that the machinery fired on at least one plan
            f"crash fired on "
            f"{sum(any(k.startswith('faults.crashes') for k in o.net_counters) for o in outcomes if o.plan.crashes)}"
            f"/{sum(bool(o.plan.crashes) for o in outcomes)} crash-bearing plans",
        ),
        ShapeCheck(
            "fault_snapshots_deterministic",
            deterministic,
            "same plan + seed reproduced identical results and "
            "net.*/faults.* counters" if deterministic
            else "rerun diverged — fault injection is not deterministic",
        ),
    ]
    rows["watchdog"] = (
        f"exec_timeout={cc.exec_timeout:.3f}s max_restarts={cc.max_restarts}"
    )
    rendered = report.kv_table(
        f"Chaos — {plans} fault plans vs fault-free baseline "
        f"(base seed {fault_seed})",
        rows,
    )
    extra = {
        "fault_seed": fault_seed,
        "plans": plans,
        "baseline_duration": duration,
        "outcomes": [
            {
                "seed": o.seed,
                "matched": o.matched,
                "failed_cleanly": o.failed_cleanly,
                "error": o.error,
                "net_counters": o.net_counters,
            }
            for o in outcomes
        ],
    }
    return ExperimentResult("chaos", [], rendered, checks, extra=extra)


def exp_scheduler(
    env: Optional[BenchEnvironment] = None,
    *,
    nscans: int = 3,
    nsmall: int = 8,
    nservers: int = 4,
    max_inflight: int = 2,
) -> ExperimentResult:
    """Scheduler-policy ablation: the QoS mixed workload (``nscans`` 8-step
    batch scans submitted ahead of ``nsmall`` 2-step interactive queries)
    under every admission policy, same graph, same cluster shape, same
    ``max_inflight`` cap.

    The metric is interactive-tenant latency *including queue wait* (the
    scheduler stamps submission time at admission, so ``stats.elapsed``
    covers the time spent queued). FIFO launches in arrival order, so every
    small query waits behind the whole batch; weighted-fair queueing
    (interactive weighted 4:1 over batch) lets the cheap interactive work
    overtake queued scans — the claim checked here is a lower interactive
    p99. Result sets must be identical across policies: scheduling reorders
    work, never answers.
    """
    from repro.cluster import Cluster, ClusterConfig
    from repro.engine.options import graphtrek_options
    from repro.sched import POLICY_NAMES, SchedulerConfig
    from repro.workloads import qos_mixed_workload

    env = env or BenchEnvironment.from_env()
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    items = qos_mixed_workload(
        env.seed, 1 << env.scale, nscans=nscans, nsmall=nsmall
    )
    queries = [item["query"] for item in items]
    qos = [item["qos"] for item in items]
    sched_config = SchedulerConfig(
        max_inflight=max_inflight,
        tenant_weights={"interactive": 4.0, "batch": 1.0},
    )

    cells = []
    rows: dict[str, str] = {}
    per_policy: dict[str, dict] = {}
    result_sets: dict[str, list] = {}
    launched: dict[str, int] = {}
    for policy in POLICY_NAMES:
        opts = graphtrek_options(scheduler=policy)
        config = ClusterConfig(
            nservers=nservers, engine=opts, scheduler_config=sched_config
        )
        if harness.tracing_enabled():
            config.trace_enabled = True
        cluster = Cluster.build(graph, config)
        outcomes = cluster.traverse_many(queries, cold=True, qos=qos)
        smalls = [
            o.stats.elapsed
            for o, item in zip(outcomes, items)
            if item["kind"] == "small"
        ]
        scans = [
            o.stats.elapsed
            for o, item in zip(outcomes, items)
            if item["kind"] == "scan"
        ]
        result_sets[policy] = [sorted(o.result.vertices) for o in outcomes]
        snapshot = cluster.metrics_snapshot()
        launched[policy] = sum(
            v
            for k, v in snapshot.get("counters", {}).items()
            if k.startswith("sched.launched")
        )
        per_policy[policy] = {
            "small_p50": float(np.percentile(smalls, 50)),
            "small_p99": float(np.percentile(smalls, 99)),
            "small_mean": float(np.mean(smalls)),
            "scan_max": max(scans),
            "makespan": max(o.stats.elapsed for o in outcomes),
        }
        rows[f"{policy} interactive p99"] = report.fmt_time(
            per_policy[policy]["small_p99"]
        )
        rows[f"{policy} interactive p50"] = report.fmt_time(
            per_policy[policy]["small_p50"]
        )
        rows[f"{policy} batch max"] = report.fmt_time(per_policy[policy]["scan_max"])
        rows[f"{policy} makespan"] = report.fmt_time(per_policy[policy]["makespan"])
        cell = harness.Cell.from_outcome(opts, nservers, outcomes[0])
        cell.elapsed = per_policy[policy]["makespan"]
        cell.metrics = snapshot
        if harness.tracing_enabled():
            cell.trace = cluster.trace_payload(label=f"sched-{policy}")
        # Cell is keyed (engine, nservers); disambiguate the three
        # same-engine cells by policy name.
        cell.engine = f"{cell.engine}:{policy}"
        cells.append(cell)

    wfq, fifo = per_policy["wfq"], per_policy["fifo"]
    checks = [
        ShapeCheck(
            "wfq_beats_fifo_on_interactive_p99",
            wfq["small_p99"] < fifo["small_p99"],
            f"interactive p99 incl. queue wait: wfq "
            f"{report.fmt_time(wfq['small_p99'])} vs fifo "
            f"{report.fmt_time(fifo['small_p99'])} (weighted-fair lets cheap "
            "interactive work overtake queued batch scans)",
        ),
        ShapeCheck(
            "policies_agree_on_results",
            all(result_sets[p] == result_sets["fifo"] for p in POLICY_NAMES),
            "every policy returned identical vertex sets for all "
            f"{len(queries)} queries" if all(
                result_sets[p] == result_sets["fifo"] for p in POLICY_NAMES
            ) else "policies returned DIFFERENT result sets",
        ),
        ShapeCheck(
            "all_submissions_launched",
            all(n == len(queries) for n in launched.values()),
            f"sched.launched == {len(queries)} for every policy "
            f"(got {launched})",
        ),
    ]
    rendered = report.kv_table(
        f"Scheduler ablation — {nscans} batch scans + {nsmall} interactive "
        f"queries, {nservers} servers, max_inflight={max_inflight}",
        rows,
    )
    return ExperimentResult(
        "scheduler", cells, rendered, checks, extra={"per_policy": per_policy}
    )


# -- traversal-operator ablation (repeat / union / back / aggregate) ----------


def exp_lang_ops(
    env: Optional[BenchEnvironment] = None, *, nservers: int = 4
) -> ExperimentResult:
    """Traversal-operator ablation on the Darshan metadata graph: the
    ``repeat``-based k-hop lineage, the server-side ``union``, and the mixed
    ``agent_exploration`` query (``as_``/``back`` + ``union`` +
    ``group_count``) on all three engines.

    Claims checked: every engine reproduces the single-node oracle (result
    sets *and* aggregates); the server-side ``union`` beats the client-side
    ``union_results`` workaround (two full cold traversals) on both elapsed
    time and message count, because the shared prefix runs once; and a rerun
    of every query is byte-identical (canonical ordering end to end).
    """
    from repro.cluster import Cluster, ClusterConfig
    from repro.workloads import agent_exploration, k_hop_lineage

    env = env or BenchEnvironment.from_env()
    md = harness.darshan_graph(scale_users=12, seed=env.seed)
    user = md.user_ids[0]
    lineage_src = md.file_ids[0]
    prefix = GTravel.v(user).e("run").e("hasExecutions")
    queries = {
        "k_hop_lineage": k_hop_lineage(lineage_src, hops=3).compile(),
        "union": prefix.union(
            GTravel.s().e("read"), GTravel.s().e("write")
        ).compile(),
        "agent_exploration": agent_exploration(user, kind="text").compile(),
    }
    client_legs = [
        GTravel.v(user).e("run").e("hasExecutions").e("read").compile(),
        GTravel.v(user).e("run").e("hasExecutions").e("write").compile(),
    ]

    cells = []
    rows: dict[str, str] = {}
    oracle_ok = True
    rerun_ok = True
    for qname, plan in queries.items():
        ref = ReferenceEngine(md.graph).run(plan)
        for kind in (EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK):
            config = ClusterConfig(nservers=nservers, engine=kind)
            if harness.tracing_enabled():
                config.trace_enabled = True
            cluster = Cluster.build(md.graph, config)
            outcome = cluster.traverse(plan)
            rerun = cluster.traverse(plan)
            oracle_ok &= outcome.result.same_result(ref)
            rerun_ok &= rerun.result.same_result(outcome.result)
            cell = harness.Cell.from_outcome(kind, nservers, outcome)
            cell.engine = f"{cell.engine}:{qname}"
            cell.metrics = cluster.metrics_snapshot()
            if harness.tracing_enabled():
                cell.trace = cluster.trace_payload(label=f"lang-{qname}")
            cells.append(cell)
            rows[f"{qname} {kind.value}"] = (
                f"{report.fmt_time(outcome.stats.elapsed)}  "
                f"(msgs={outcome.stats.messages})"
            )

    # Client-side OR-composition baseline: two full cold traversals whose
    # results are merged at the client (the paper's workaround).
    server_cell = cell_lookup(cells)[(f"{GT}:union", nservers)]
    cluster = Cluster.build(md.graph, ClusterConfig(nservers=nservers,
                                                    engine=EngineKind.GRAPHTREK))
    legs = [cluster.traverse(p) for p in client_legs]
    client_elapsed = sum(o.stats.elapsed for o in legs)
    client_msgs = sum(o.stats.messages for o in legs)
    rows["union (client-side, 2 traversals)"] = (
        f"{report.fmt_time(client_elapsed)}  (msgs={client_msgs})"
    )

    checks = [
        ShapeCheck(
            "engines_match_oracle",
            oracle_ok,
            "all engines reproduced the oracle's vertex sets and aggregates"
            if oracle_ok else "an engine DIVERGED from the oracle",
        ),
        ShapeCheck(
            "reruns_identical",
            rerun_ok,
            "second run of every query returned identical results",
        ),
        ShapeCheck(
            "server_union_beats_client_union",
            server_cell.elapsed < client_elapsed
            and server_cell.messages < client_msgs,
            f"server-side union {report.fmt_time(server_cell.elapsed)}/"
            f"{server_cell.messages} msgs vs client-side "
            f"{report.fmt_time(client_elapsed)}/{client_msgs} msgs "
            "(shared prefix runs once)",
        ),
    ]
    rendered = report.kv_table(
        f"Traversal operators — metadata graph, {nservers} servers", rows
    )
    return ExperimentResult("lang_ops", cells, rendered, checks)


# -- coordinator recovery ablation (DESIGN.md §13) ----------------------------


def exp_coordinator_recovery(
    env: Optional[BenchEnvironment] = None,
    *,
    crash_fractions: tuple = (0.3, 0.5, 0.7),
) -> ExperimentResult:
    """Coordinator-recovery ablation on the Fig. 7 workload (8-step
    GraphTrek on RMAT-1): the traversal journal's on/off overhead in the
    fault-free case, and crash-recovery cost when the coordinator-hosting
    server dies mid-traversal at each of ``crash_fractions`` of the
    fault-free duration and recovers shortly after.

    Measured per crash leg: recovery time (extra virtual time beyond the
    host's pure downtime), the recovered epoch, fenced stale messages, and
    the differential verdict — the recovered run must reproduce the
    journal-off baseline's result sets element-identically.
    """
    from repro.faults.chaos import chaos_coordinator_config
    from repro.faults.plan import CrashEvent, FaultPlan

    env = env or BenchEnvironment.from_env()
    nservers = max(env.servers)
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    plan = harness.kstep_plan(env, 8)

    from repro.cluster import Cluster, ClusterConfig

    def fault_free(journal: bool):
        cluster = Cluster.build(
            graph,
            ClusterConfig(
                nservers=nservers, engine=EngineKind.GRAPHTREK, journal=journal
            ),
        )
        start = cluster.now
        outcome = cluster.traverse(plan, cold=True)
        elapsed = cluster.now - start
        stats = None
        if journal:
            j = cluster.journal
            stats = {
                "records": j.records_appended,
                "bytes": j.bytes_appended,
                "size_bytes": j.size_bytes(),
            }
        cluster.shutdown()
        return outcome.result.returned, elapsed, stats

    baseline, t_off, _ = fault_free(journal=False)
    on_result, t_on, journal_stats = fault_free(journal=True)
    overhead = (t_on - t_off) / t_off if t_off else 0.0

    cc = chaos_coordinator_config(t_on)
    legs = []
    for i, frac in enumerate(crash_fractions):
        at = frac * t_on
        recover_at = at + 0.25 * t_on
        fault_plan = FaultPlan(
            seed=i, crashes=(CrashEvent(server=0, at=at, recover_at=recover_at),)
        )
        cluster = Cluster.build(
            graph,
            ClusterConfig(
                nservers=nservers,
                engine=EngineKind.GRAPHTREK,
                journal=True,
                reliable=True,
                fault_plan=fault_plan,
                coordinator_config=cc,
            ),
        )
        start = cluster.now
        outcome = cluster.traverse(plan, cold=True)
        elapsed = cluster.now - start
        counters = cluster.metrics_snapshot()["counters"]
        downtime = recover_at - at
        legs.append(
            {
                "crash_fraction": frac,
                "matched": outcome.result.returned == baseline,
                "elapsed": elapsed,
                "downtime": downtime,
                "recovery_time": elapsed - t_on - downtime,
                "epoch": cluster.coordinator.epoch,
                "fenced": sum(
                    v for k, v in counters.items() if k.startswith("coord.fenced")
                ),
                "journal_size_bytes": cluster.journal.size_bytes(),
                "leaked_bindings": (
                    cluster.supervisor.live_bindings
                    if cluster.supervisor is not None
                    else 0
                ),
            }
        )
        cluster.shutdown()

    checks = [
        ShapeCheck(
            "recovered_results_identical",
            all(l["matched"] for l in legs),
            f"{sum(l['matched'] for l in legs)}/{len(legs)} crash legs "
            "reproduced the journal-off baseline element-identically",
        ),
        ShapeCheck(
            "every_leg_recovered_an_epoch",
            all(l["epoch"] >= 1 for l in legs),
            f"epochs {[l['epoch'] for l in legs]} (all must be >= 1)",
        ),
        ShapeCheck(
            "journal_off_critical_path",
            abs(overhead) < 0.01 and on_result == baseline,
            f"journal on/off virtual-time overhead {overhead * 100:.2f}% "
            "(durability is off the traversal's critical path)",
        ),
        ShapeCheck(
            "recovery_cheaper_than_rerun",
            all(l["elapsed"] - l["downtime"] < 3.0 * t_on for l in legs),
            "post-crash completion stayed within 3x the fault-free run "
            "after subtracting pure downtime",
        ),
        ShapeCheck(
            "no_leaked_bindings",
            all(l["leaked_bindings"] == 0 for l in legs),
            "recovery supervisor held zero client bindings after completion",
        ),
    ]

    rows = {
        "fault-free (journal off)": report.fmt_time(t_off),
        "fault-free (journal on)": (
            f"{report.fmt_time(t_on)}  (overhead {overhead * 100:+.2f}%, "
            f"{journal_stats['records']} records, "
            f"{journal_stats['bytes']} bytes appended)"
        ),
    }
    for l in legs:
        rows[f"crash at {l['crash_fraction']:.0%} of run"] = (
            f"{'match' if l['matched'] else 'WRONG RESULT'}  "
            f"recovery={report.fmt_time(max(l['recovery_time'], 0.0))} "
            f"epoch={l['epoch']} fenced={l['fenced']}"
        )
    rendered = report.kv_table(
        f"Coordinator recovery — 8-step GraphTrek on {nservers} servers "
        f"(scale {env.scale})",
        rows,
    )
    extra = {
        "baseline_elapsed": t_off,
        "journal_elapsed": t_on,
        "journal_overhead": overhead,
        "journal_stats": journal_stats,
        "legs": legs,
    }
    return ExperimentResult("coordinator_recovery", [], rendered, checks, extra=extra)


# -- telemetry-plane ablation -------------------------------------------------


def exp_telemetry(
    env: Optional[BenchEnvironment] = None,
    *,
    repeats: int = 3,
) -> ExperimentResult:
    """Telemetry-plane ablation on the Fig. 10 workload (8-step GraphTrek).

    Three claims (DESIGN.md §14):

    * **Overhead** — the plane's watcher-based windowed rollups cost under
      5% wall clock versus ``telemetry_enabled=False`` on the 8-step run
      (min of ``repeats``), and exactly zero *virtual* time — telemetry
      never touches the simulation. The tail-sampled tracing leg is
      reported informationally alongside.
    * **Determinism** — the OpenMetrics dump, the health document, and the
      SLO alert log are byte-identical across reruns per (seed, config) on
      all three engines, and every dump passes the OpenMetrics linter.
    * **Hot-shard detection** — on a workload hot-spotted onto one server,
      the detector ranks that server first and flags it hot.

    Artifacts: the GraphTrek cell's OpenMetrics text, health JSON, and
    alert-log JSON are written to benchmarks/results/ for CI upload.
    """
    import time

    from repro.cluster import Cluster, ClusterConfig
    from repro.obs.exporter import validate_openmetrics
    from repro.obs.slo import SLOConfig
    from repro.obs.trace import SamplingPolicy

    env = env or BenchEnvironment.from_env()
    nservers = max(env.servers)
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    plan = harness.kstep_plan(env, 8)

    # -- overhead: telemetry off vs on (vs on + tail-sampled tracing) --------
    def timed_run(**kwargs):
        cluster = Cluster.build(
            graph,
            ClusterConfig(
                nservers=nservers, engine=EngineKind.GRAPHTREK, **kwargs
            ),
        )
        start = time.perf_counter()
        outcome = cluster.traverse(plan)
        wall = time.perf_counter() - start
        cluster.shutdown()
        return wall, outcome.stats.elapsed, outcome.result.returned

    legs = {
        "off": dict(telemetry_enabled=False),
        "on": dict(telemetry_enabled=True),
        "traced": dict(
            telemetry_enabled=True,
            trace_enabled=True,
            trace_sampling=SamplingPolicy(sample_every_n=16, seed=env.seed),
        ),
    }
    timed_run(**legs["off"])  # discarded warmup (imports, graph cache)
    walls = {name: float("inf") for name in legs}
    virtuals, results = {}, {}
    # legs interleave per repeat so machine drift hits all three equally;
    # min-of-repeats then discards transient contention
    for _ in range(repeats):
        for name, kwargs in legs.items():
            wall, virtual, returned = timed_run(**kwargs)
            walls[name] = min(walls[name], wall)
            virtuals[name], results[name] = virtual, returned
    wall_off, wall_on, wall_traced = walls["off"], walls["on"], walls["traced"]
    virt_off, virt_on = virtuals["off"], virtuals["on"]
    res_off, res_on = results["off"], results["on"]
    overhead = (wall_on - wall_off) / wall_off if wall_off else 0.0
    traced_overhead = (wall_traced - wall_off) / wall_off if wall_off else 0.0

    # -- determinism: artifacts byte-identical across reruns, 3 engines ------
    def artifacts(engine: EngineKind) -> tuple:
        cluster = Cluster.build(
            graph,
            ClusterConfig(
                nservers=min(env.servers),
                engine=engine,
                telemetry_enabled=True,
                trace_enabled=True,
                trace_sampling=SamplingPolicy(sample_every_n=4, seed=env.seed),
                # every completion breaches a 1 µs objective: the burn-rate
                # alert deterministically fires, populating the alert log
                slo_config=SLOConfig(latency_objective=1e-6, min_events=2),
            ),
        )
        plans = [harness.kstep_plan(env, 4, pick=7 + i) for i in range(4)]
        qos = [{"tenant": ("alpha", "beta")[i % 2]} for i in range(4)]
        cluster.traverse_many(plans, qos=qos)
        out = (
            cluster.openmetrics(),
            cluster.health_json(),
            cluster.slo.to_json(),
        )
        cluster.shutdown()
        return out

    lint_problems: list[str] = []
    mismatched: list[str] = []
    alert_counts: dict[str, int] = {}
    gt_artifacts = None
    for engine in (EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK):
        first, second = artifacts(engine), artifacts(engine)
        if first != second:
            mismatched.append(engine.value)
        lint_problems.extend(validate_openmetrics(first[0]))
        import json as _json

        alert_counts[engine.value] = len(_json.loads(first[2]))
        if engine is EngineKind.GRAPHTREK:
            gt_artifacts = first

    # -- hot-shard detection: load concentrated on one server ----------------
    hot_server = 1
    cluster = Cluster.build(
        graph, ClusterConfig(nservers=4, engine=EngineKind.GRAPHTREK)
    )
    owner = cluster.partitioner.owner
    targets = [
        v for v in sorted(graph.vertex_ids()) if owner(v) == hot_server
    ][:16]
    # a no-match edge label pins every real visit onto the start vertex's
    # owner — all load lands on hot_server, none anywhere else
    cluster.traverse_many(
        [GTravel.v(v).e("__telemetry_hotspot__") for v in targets], cold=False
    )
    shard_report = cluster.hot_shard_report()
    cluster.shutdown()

    # -- artifacts for CI ----------------------------------------------------
    harness.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    om_path = harness.RESULTS_DIR / "telemetry_openmetrics.txt"
    om_path.write_text(gt_artifacts[0])
    health_path = harness.RESULTS_DIR / "telemetry_health.json"
    health_path.write_text(gt_artifacts[1])
    alerts_path = harness.RESULTS_DIR / "telemetry_alerts.json"
    alerts_path.write_text(gt_artifacts[2])

    checks = [
        ShapeCheck(
            "telemetry_overhead_under_5pct",
            overhead < 0.05,
            f"wall clock {wall_off:.3f}s -> {wall_on:.3f}s "
            f"({overhead * 100:+.2f}%; with tail-sampled tracing "
            f"{traced_overhead * 100:+.2f}%)",
        ),
        ShapeCheck(
            "telemetry_costs_zero_virtual_time",
            virt_on == virt_off and res_on == res_off,
            f"virtual elapsed {virt_off:.4f}s on both legs, identical results",
        ),
        ShapeCheck(
            "exports_pass_openmetrics_linter",
            not lint_problems,
            f"{len(lint_problems)} linter problems: {lint_problems[:3]}",
        ),
        ShapeCheck(
            "exports_byte_identical_across_reruns",
            not mismatched,
            "openmetrics+health+alert-log reran byte-identically on "
            f"sync/async/graphtrek (mismatches: {mismatched or 'none'})",
        ),
        ShapeCheck(
            "slo_alerts_fired_on_breached_objective",
            all(n > 0 for n in alert_counts.values()),
            f"alert-log transitions per engine: {alert_counts}",
        ),
        ShapeCheck(
            "hot_shard_ranked_first",
            shard_report.hottest == hot_server
            and hot_server in shard_report.hot,
            f"hot-spotted server {hot_server}: ranked={shard_report.ranked} "
            f"hot={shard_report.hot}",
        ),
    ]

    rows = {
        "telemetry off (wall)": f"{wall_off:.3f}s",
        "telemetry on (wall)": f"{wall_on:.3f}s  ({overhead * 100:+.2f}%)",
        "on + sampled tracing (wall)": (
            f"{wall_traced:.3f}s  ({traced_overhead * 100:+.2f}%)"
        ),
        "virtual elapsed (both)": report.fmt_time(virt_off),
        "alert transitions (gt)": str(alert_counts.get(GT, 0)),
        "hot-shard ranking": " > ".join(str(s) for s in shard_report.ranked),
        "artifacts": f"{om_path.name}, {health_path.name}, {alerts_path.name}",
    }
    rendered = report.kv_table(
        f"Telemetry plane — 8-step GraphTrek on {nservers} servers "
        f"(scale {env.scale})",
        rows,
    )
    extra = {
        "wall_off": wall_off,
        "wall_on": wall_on,
        "wall_traced": wall_traced,
        "overhead": overhead,
        "traced_overhead": traced_overhead,
        "alert_counts": alert_counts,
        "hot_shard": shard_report.to_payload(),
    }
    return ExperimentResult("telemetry", [], rendered, checks, extra=extra)


# -- elastic scale-out ablation -----------------------------------------------


def exp_rebalance(
    env: Optional[BenchEnvironment] = None,
    *,
    nservers: int = 4,
    pinned: int = 16,
    interactive: int = 24,
    p99_tolerance: float = 1.25,
) -> ExperimentResult:
    """Online shard-rebalancing ablation (DESIGN.md §15).

    A workload hot-spotted onto one server (no-match edge labels pin every
    real visit on the start vertex's owner) concentrates essentially all
    execution there. Four claims against a static twin of the same cluster:

    * **Detection & selection** — the hot-shard report ranks the loaded
      server first and ``select_migration`` picks it as the source.
    * **Skew reduction** — re-running the pinned workload after one
      telemetry-driven migration spreads its visits across two owners: the
      hot server's visit share and the per-server skew (max/mean) both drop
      versus the static cluster.
    * **Interactive p99 unharmed** — migration traffic rides the scheduler
      as a low-weight ``rebalance`` tenant under weighted-fair queueing, so
      interactive latency *including queue wait* stays within
      ``p99_tolerance`` of the migration-free baseline.
    * **Answers unchanged** — the interactive queries racing the migration
      return exactly the static cluster's result sets, and the migration
      finishes ``done`` with zero leaked protocol state.
    """
    from repro.cluster import Cluster, ClusterConfig
    from repro.engine.options import graphtrek_options
    from repro.obs.telemetry import EXEC_RATE_METRIC
    from repro.rebalance import MigrationConfig, select_migration
    from repro.sched import SchedulerConfig

    env = env or BenchEnvironment.from_env()
    graph = harness.rmat1_graph(env.scale, env.edge_factor, env.seed)
    sched_config = SchedulerConfig(
        max_inflight=2,
        tenant_weights={"interactive": 4.0, "rebalance": 0.5},
    )

    def build():
        return Cluster.build(
            graph,
            ClusterConfig(
                nservers=nservers,
                engine=graphtrek_options(scheduler="wfq"),
                scheduler_config=sched_config,
                migration=MigrationConfig(chunk_vertices=8, dual_window=0.01),
                journal=True,
            ),
        )

    def per_server_visits(cluster):
        counters = cluster.metrics_snapshot().get("counters", {})
        return {
            s: counters.get(f"{EXEC_RATE_METRIC}{{server={s}}}", 0)
            for s in range(nservers)
        }

    def visit_split(cluster, plans, hot):
        before = per_server_visits(cluster)
        cluster.traverse_many(plans, cold=False)
        after = per_server_visits(cluster)
        delta = {s: after[s] - before[s] for s in range(nservers)}
        total = max(1, sum(delta.values()))
        skew = max(delta.values()) / (total / nservers)
        return delta, skew, delta[hot] / total

    hot = 1
    interactive_plans = [
        harness.kstep_plan(env, 4, pick=3 + i) for i in range(interactive)
    ]
    qos = [{"tenant": "interactive"}] * interactive

    # -- static leg: the baseline twin (no migration ever starts) -----------
    static = build()
    pinned_vids = [
        v
        for v in sorted(graph.vertex_ids())
        if static.routing.owner(v) == hot
    ][:pinned]
    pinned_plans = [
        GTravel.v(v).e("__rebalance_hotspot__") for v in pinned_vids
    ]
    _, skew_static, share_static = visit_split(static, pinned_plans, hot)
    outcomes_static = static.traverse_many(
        interactive_plans, cold=False, qos=qos
    )
    lat_static = [o.stats.elapsed for o in outcomes_static]
    results_static = [sorted(o.result.vertices) for o in outcomes_static]
    p99_static = float(np.percentile(lat_static, 99))
    static.shutdown()

    # -- live leg: same heat, interactive workload racing one telemetry-
    # driven migration --------------------------------------------------------
    live = build()
    live.traverse_many(pinned_plans, cold=False)  # heat the detector
    report_before = live.hot_shard_report()
    # loads weighted by what is actually hot — the pinned range — so the
    # selector migrates half of the hot range rather than the whole thing
    # (moving it wholesale would just relocate the hot spot)
    loads = {
        s.server_id: [
            v for v in pinned_vids if live.routing.owner(v) == s.server_id
        ]
        for s in live.servers
    }
    choice = select_migration(
        report_before, loads, require_hot=False, fraction=0.5
    )
    half = interactive // 2
    events = [
        live.submit(p, tenant="interactive")[1]
        for p in interactive_plans[:half]
    ]
    _, mig_event = live.rebalance(
        choice.src, choice.dst, vids=choice.vids, wait=False
    )
    events += [
        live.submit(p, tenant="interactive")[1]
        for p in interactive_plans[half:]
    ]
    outcomes_live = [live.runtime.run_until_complete(e) for e in events]
    state = live.runtime.run_until_complete(mig_event)
    lat_live = [o.stats.elapsed for o in outcomes_live]
    results_live = [sorted(o.result.vertices) for o in outcomes_live]
    p99_live = float(np.percentile(lat_live, 99))
    _, skew_after, share_after = visit_split(live, pinned_plans, hot)
    leaks = live.migrator.leaked_state()
    dual_left = live.routing.dual_count
    live.shutdown()

    checks = [
        ShapeCheck(
            "hot_shard_detected_and_selected",
            report_before.hottest == hot and choice.src == hot,
            f"hot-spotted server {hot}: ranked={report_before.ranked}, "
            f"selected source={choice.src} -> target={choice.dst} "
            f"({len(choice.vids)} vertices)",
        ),
        ShapeCheck(
            "post_migration_skew_reduced",
            skew_after < skew_static and share_after < share_static,
            f"pinned-workload visit skew (max/mean) {skew_static:.2f} -> "
            f"{skew_after:.2f}; hot server's visit share "
            f"{share_static * 100:.0f}% -> {share_after * 100:.0f}%",
        ),
        ShapeCheck(
            "interactive_p99_unharmed_under_wfq",
            p99_live <= p99_static * p99_tolerance,
            f"interactive p99 incl. queue wait: static "
            f"{report.fmt_time(p99_static)} vs with-migration "
            f"{report.fmt_time(p99_live)} (tolerance x{p99_tolerance})",
        ),
        ShapeCheck(
            "migration_changes_no_answers",
            results_live == results_static,
            f"all {interactive} interactive result sets identical with and "
            "without the concurrent migration",
        ),
        ShapeCheck(
            "migration_done_zero_leaks",
            state.phase == "done" and not leaks and dual_left == 0,
            f"terminal phase {state.phase}; leaked={leaks or 'nothing'}; "
            f"dual-routed remaining={dual_left}",
        ),
    ]
    rows = {
        "hot server / visit share": f"{hot} / {share_static * 100:.0f}%",
        "selected move": (
            f"{len(choice.vids)} vertices {choice.src} -> {choice.dst}"
        ),
        "visit skew (static -> rebalanced)": (
            f"{skew_static:.2f} -> {skew_after:.2f}"
        ),
        "hot visit share (static -> rebalanced)": (
            f"{share_static * 100:.0f}% -> {share_after * 100:.0f}%"
        ),
        "interactive p99 (static)": report.fmt_time(p99_static),
        "interactive p99 (with migration)": report.fmt_time(p99_live),
        "migration": (
            f"{state.phase}: {state.chunks_applied} chunks, "
            f"{state.bytes_moved} bytes, {state.resends} resends"
        ),
    }
    rendered = report.kv_table(
        f"Elastic scale-out — hot-spotted workload on {nservers} servers "
        f"(scale {env.scale}, wfq, rebalance tenant weight 0.5)",
        rows,
    )
    extra = {
        "hot_server": hot,
        "choice": {
            "src": choice.src,
            "dst": choice.dst,
            "vertices": len(choice.vids),
        },
        "skew_static": skew_static,
        "skew_after": skew_after,
        "share_static": share_static,
        "share_after": share_after,
        "p99_static": p99_static,
        "p99_with_migration": p99_live,
        "migration": state.payload(),
        "hot_shard_report": report_before.to_payload(),
    }
    return ExperimentResult("rebalance", [], rendered, checks, extra=extra)


def exp_columnar(
    env: Optional[BenchEnvironment] = None,
    *,
    nservers: int = 16,
    steps: int = 8,
    wall_repeats: int = 3,
) -> ExperimentResult:
    """Columnar-adjacency + batch-frontier ablation (DESIGN.md §16).

    The 8-step RMAT figure at one scale step above the default (2× the
    edges), GraphTrek engine, two configurations:

    * **baseline** — grouped entry-per-edge layout, per-vertex frontier;
    * **columnar** — delta/varint-packed blocks, batch-vectorized frontier.

    Unlike the simulated-time tables, the headline here is *real* wall
    clock (best of ``wall_repeats``): the batch path exists to cut Python
    per-vertex overhead, which virtual time cannot see. Alongside it:
    bytes/edge from the live storage gauges (the compression claim), a
    standalone decode-throughput microbenchmark (edges/s through
    ``decode_block``), and an element-identical result check — the speedup
    must not come from answering differently.
    """
    import time

    from repro.cluster import Cluster, ClusterConfig
    from repro.engine.options import options_for
    from repro.storage.columnar import decode_block, encode_block
    from repro.workloads import rmat_kstep_query

    env = env or BenchEnvironment.from_env()
    scale = env.scale + 1  # 2× current figure scale
    graph = harness.rmat1_graph(scale, env.edge_factor, env.seed)
    src = harness.rmat1_source(scale, env.edge_factor, env.seed)
    plan = rmat_kstep_query(src, steps).compile()

    configs = {
        "grouped": ("grouped", False),
        "columnar": ("columnar", True),
    }
    cells, walls, virt, bpe, results = [], {}, {}, {}, {}
    for name, (layout, batch) in configs.items():
        best_wall, outcome = None, None
        for _ in range(wall_repeats):
            cluster = Cluster.build(
                graph,
                ClusterConfig(
                    nservers=nservers,
                    engine=options_for(
                        EngineKind.GRAPHTREK, batch_frontier=batch
                    ),
                    edge_layout=layout,
                    block_cache_blocks=0,  # cold: layout differences are I/O
                ),
            )
            t0 = time.perf_counter()
            outcome = cluster.traverse(plan)
            wall = time.perf_counter() - t0
            best_wall = wall if best_wall is None else min(best_wall, wall)
        snaps = [s.store.metrics_snapshot() for s in cluster.servers]
        edge_bytes = sum(s["edge_bytes"] for s in snaps)
        edge_count = sum(s["edge_count"] for s in snaps)
        cell = harness.Cell.from_outcome(EngineKind.GRAPHTREK, nservers, outcome)
        cell.engine = f"GraphTrek/{name}"
        cell.metrics = cluster.metrics_snapshot()
        cells.append(cell)
        walls[name] = best_wall
        virt[name] = outcome.stats.elapsed
        bpe[name] = edge_bytes / max(1, edge_count)
        results[name] = {
            lv: frozenset(v) for lv, v in outcome.result.returned.items() if v
        }

    # decode throughput: one dense sorted block, timed standalone
    ids = sorted(range(0, 200_000, 2))
    buf = encode_block(ids)
    t0 = time.perf_counter()
    reps = 20
    for _ in range(reps):
        decode_block(buf)
    decode_secs = time.perf_counter() - t0
    decode_eps = reps * len(ids) / decode_secs

    speedup = walls["grouped"] / walls["columnar"]
    checks = [
        ShapeCheck(
            "results_element_identical",
            results["grouped"] == results["columnar"],
            "columnar+batch returns the same vertex sets as grouped",
        ),
        ShapeCheck(
            "columnar_compresses",
            bpe["columnar"] < bpe["grouped"],
            f"bytes/edge {bpe['columnar']:.1f} (columnar) vs "
            f"{bpe['grouped']:.1f} (grouped)",
        ),
        ShapeCheck(
            "virtual_time_within_envelope",
            virt["columnar"] <= 1.10 * virt["grouped"],
            f"virtual elapsed {report.fmt_time(virt['columnar'])} vs "
            f"{report.fmt_time(virt['grouped'])}: chunked batch I/O trades "
            "some execution merging for fewer, larger disk sleeps — the "
            "paper metric must stay within 10% while wall-clock drops",
        ),
        ShapeCheck(
            "end_to_end_wallclock_speedup",
            speedup >= 1.0,
            f"wall-clock {walls['grouped']:.3f}s -> {walls['columnar']:.3f}s "
            f"({speedup:.2f}x, best of {wall_repeats})",
        ),
    ]
    rows = {
        "grouped wall (best)": f"{walls['grouped']:.3f} s",
        "columnar wall (best)": f"{walls['columnar']:.3f} s",
        "speedup": f"{speedup:.2f}x",
        "grouped bytes/edge": f"{bpe['grouped']:.1f}",
        "columnar bytes/edge": f"{bpe['columnar']:.1f}",
        "decode throughput": f"{decode_eps / 1e6:.1f} M edges/s",
    }
    rendered = report.kv_table(
        f"Columnar adjacency + batch frontier — {steps}-step RMAT-1 "
        f"(scale={scale}, {nservers} servers)",
        rows,
    )
    extra = {
        "scale": scale,
        "wall_seconds": walls,
        "virtual_seconds": virt,
        "bytes_per_edge": bpe,
        "decode_edges_per_sec": decode_eps,
        "speedup": speedup,
    }
    return ExperimentResult("columnar", cells, rendered, checks, extra=extra)
