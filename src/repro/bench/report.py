"""Paper-style report rendering for benchmark output.

The harness prints each reproduced table/figure as ASCII in the same layout
the paper uses (engines as columns, server counts as rows), with the paper's
published numbers alongside where the paper gives them, so a reader can
check the *shape* claims directly from the benchmark log.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.harness import Cell, cell_lookup


def fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.2f} s"
    return f"{seconds * 1000:7.1f} ms"


def engine_table(
    title: str,
    cells: Sequence[Cell],
    servers: Sequence[int],
    engines: Sequence[str],
    paper: Optional[dict[tuple[str, int], float]] = None,
) -> str:
    """Render elapsed-time rows per server count, one column per engine.

    ``paper`` maps (engine, nservers) to the paper's published seconds; when
    given, a second line shows them for comparison.
    """
    lookup = cell_lookup(cells)
    width = max(len(e) for e in engines) + 14
    lines = [title, "=" * len(title)]
    header = "servers | " + " | ".join(f"{e:^{width}}" for e in engines)
    lines.append(header)
    lines.append("-" * len(header))
    for n in servers:
        cols = []
        for engine in engines:
            cell = lookup.get((engine, n))
            if cell is None:
                cols.append(" " * width)
                continue
            text = fmt_time(cell.elapsed)
            if paper and (engine, n) in paper:
                text += f" [paper {paper[(engine, n)]:.1f}s]"
            cols.append(f"{text:^{width}}")
        lines.append(f"{n:7d} | " + " | ".join(cols))
    return "\n".join(lines)


def speedup_table(
    title: str,
    cells: Sequence[Cell],
    servers: Sequence[int],
    baseline: str,
    others: Sequence[str],
) -> str:
    """Relative table: each engine's elapsed as a ratio of ``baseline``."""
    lookup = cell_lookup(cells)
    lines = [title, "=" * len(title)]
    header = "servers | " + " | ".join(f"{e + '/' + baseline:^22}" for e in others)
    lines.append(header)
    lines.append("-" * len(header))
    for n in servers:
        base = lookup.get((baseline, n))
        cols = []
        for engine in others:
            cell = lookup.get((engine, n))
            if cell is None or base is None or base.elapsed == 0:
                cols.append(" " * 22)
            else:
                ratio = cell.elapsed / base.elapsed
                cols.append(f"{ratio:^22.3f}")
        lines.append(f"{n:7d} | " + " | ".join(cols))
    return "\n".join(lines)


def visit_breakdown_table(title: str, cell: Cell, top: int = 32) -> str:
    """Fig. 7-style per-server visit breakdown for one GraphTrek run."""
    lines = [title, "=" * len(title)]
    lines.append(f"{'server':>6} | {'total':>7} | {'real I/O':>8} | {'combined':>8} | {'redundant':>9}")
    lines.append("-" * 52)
    rows = []
    for server, bucket in cell.per_server.items():
        real = bucket.get("real", 0)
        comb = bucket.get("combined", 0)
        red = bucket.get("redundant", 0)
        rows.append((server, real + comb + red, real, comb, red))
    rows.sort(key=lambda r: -r[1])
    for server, total, real, comb, red in rows[:top]:
        lines.append(f"{server:>6} | {total:>7} | {real:>8} | {comb:>8} | {red:>9}")
    totals = (
        sum(r[2] for r in rows),
        sum(r[3] for r in rows),
        sum(r[4] for r in rows),
    )
    lines.append("-" * 52)
    lines.append(
        f"{'TOTAL':>6} | {sum(t for t in totals):>7} | {totals[0]:>8} | "
        f"{totals[1]:>8} | {totals[2]:>9}"
    )
    return "\n".join(lines)


def kv_table(title: str, rows: dict) -> str:
    lines = [title, "=" * len(title)]
    width = max(len(str(k)) for k in rows)
    for key, value in rows.items():
        lines.append(f"{key:<{width}} : {value}")
    return "\n".join(lines)


def banner(text: str) -> str:
    bar = "#" * (len(text) + 8)
    return f"\n{bar}\n### {text} ###\n{bar}"
