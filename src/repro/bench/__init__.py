"""Benchmark harness: experiment configs, sweep runner, paper-style reports."""

from repro.bench import harness, report
from repro.bench.harness import (
    BenchEnvironment,
    Cell,
    cell_lookup,
    darshan_graph,
    kstep_plan,
    rmat1_graph,
    rmat1_source,
    run_cell,
    run_engine_comparison,
    save_results,
)

__all__ = [
    "harness",
    "report",
    "BenchEnvironment",
    "Cell",
    "cell_lookup",
    "darshan_graph",
    "kstep_plan",
    "rmat1_graph",
    "rmat1_source",
    "run_cell",
    "run_engine_comparison",
    "save_results",
]
