"""In-memory write buffer (memtable) for the LSM store.

Writes land here first; when the buffered byte size passes a threshold the
LSM store flushes the memtable into an immutable SSTable. Deletes are
recorded as tombstones so they can mask older SSTable entries.
"""

from __future__ import annotations

from typing import Iterator, Optional

#: Sentinel stored for deleted keys until compaction drops them.
TOMBSTONE = object()


class Memtable:
    """Unsorted write buffer with sort-on-scan.

    Point lookups are O(1); range scans sort lazily and cache the order until
    the next write. This matches the access pattern of the traversal
    workload: bulk loading goes straight to SSTables, so the memtable only
    holds live updates and stays small.
    """

    def __init__(self):
        self._data: dict[bytes, object] = {}
        self._sorted_keys: Optional[list[bytes]] = None
        self.size_bytes = 0

    def __len__(self) -> int:
        return len(self._data)

    def put(self, key: bytes, value: bytes) -> None:
        old = self._data.get(key)
        if old is None:
            self.size_bytes += len(key) + len(value)
            self._sorted_keys = None
        else:
            self.size_bytes += len(value) - (0 if old is TOMBSTONE else len(old))
        self._data[key] = value

    def delete(self, key: bytes) -> None:
        old = self._data.get(key)
        if old is None:
            self.size_bytes += len(key)
            self._sorted_keys = None
        elif old is not TOMBSTONE:
            self.size_bytes -= len(old)
        self._data[key] = TOMBSTONE

    def get(self, key: bytes) -> object:
        """Value bytes, TOMBSTONE, or None if absent."""
        return self._data.get(key)

    def _ensure_sorted(self) -> list[bytes]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._data)
        return self._sorted_keys

    def scan(self, start: bytes, end: bytes) -> Iterator[tuple[bytes, object]]:
        """Yield (key, value-or-TOMBSTONE) for start <= key < end, in order."""
        import bisect

        keys = self._ensure_sorted()
        lo = bisect.bisect_left(keys, start)
        hi = bisect.bisect_left(keys, end)
        for key in keys[lo:hi]:
            yield key, self._data[key]

    def items_sorted(self) -> list[tuple[bytes, object]]:
        """All entries in key order (used by flush)."""
        return [(k, self._data[k]) for k in self._ensure_sorted()]

    def clear(self) -> None:
        self._data.clear()
        self._sorted_keys = None
        self.size_bytes = 0
