"""Graph-on-KV layout: one server's slice of the property graph.

:class:`GraphStore` owns an :class:`~repro.storage.lsm.LSMStore` and maps a
partition of the property graph onto it using the paper's layout (§VI):

* each vertex attribute is one KV pair, all attributes of a vertex adjacent;
* each edge is one KV pair; edges of the same label are contiguous, so
  iterating one label is a single seek plus sequential blocks;
* different vertex types live in separate key namespaces.

A small in-memory index maps vertex id -> namespace (vertex type). This
plays the role of the underlying graph database's location/lookup service —
the paper notes the storage layer "mainly includes the location of a given
vertex and edges".

All read methods return ``(result, IOCost)``.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.errors import KeyNotFound, StorageError
from repro.graph.builder import PropertyGraph
from repro.ids import VertexId
from repro.storage import encoding as enc
from repro.storage.costmodel import IOCost
from repro.storage.lsm import LSMConfig, LSMStore


#: reserved edge property carrying the label in the interleaved layout
_LABEL_PROP = "__label"


class GraphStore:
    """One backend server's graph storage.

    ``edge_layout`` selects how a vertex's edges map to keys:

    * ``"grouped"`` (default, the paper's design): edges sorted by label,
      so a single-label scan touches only that label's contiguous run;
    * ``"interleaved"`` (ablation baseline, generic column layouts): edges
      sorted by insertion order, so any label-selective scan reads the
      vertex's whole edge block.
    """

    def __init__(self, config: Optional[LSMConfig] = None, edge_layout: str = "grouped"):
        if edge_layout not in ("grouped", "interleaved"):
            raise StorageError(f"unknown edge layout {edge_layout!r}")
        self.kv = LSMStore(config)
        self.edge_layout = edge_layout
        self._ns_of: dict[VertexId, str] = {}  # vertex location/type index
        self._by_type: dict[str, list[VertexId]] = {}

    # -- loading ---------------------------------------------------------

    def load_partition(
        self,
        graph: PropertyGraph,
        vids: Iterable[VertexId],
        reverse_index: Optional[dict[VertexId, list]] = None,
    ) -> int:
        """Bulk-load the given vertices (attributes + out-edges) from ``graph``.

        Returns the number of vertices loaded. Uses SSTable ingestion, so the
        data starts compact and cold, as in the paper's cold-start runs.

        ``reverse_index`` (vertex id → ``[(label, src, eprops), ...]`` of the
        edges *pointing at* it) additionally materializes reverse adjacency
        as ``~label`` edge records, so the cost-based planner can evaluate a
        chain backwards. Reverse edges share the forward edge's properties.
        They live in a disjoint ``~<ns>`` namespace (always label-grouped,
        whatever ``edge_layout`` is): the forward key region packs into
        exactly the same blocks whether or not the index is built, so plans
        that never go backwards pay nothing for it.
        """
        items: list[tuple[bytes, bytes]] = []
        count = 0
        for vid in vids:
            vertex = graph.vertex(vid)
            ns = vertex.vtype
            self._index_vertex(vid, ns)
            count += 1
            # Reserved attribute makes the vertex discoverable even when it
            # has no user properties.
            items.append((enc.attr_key(ns, vid, "__type"), enc.pack_value(ns)))
            for prop, packed in enc.iter_props_pairs(vertex.props):
                items.append((enc.attr_key(ns, vid, prop), packed))
            edges = list(graph.out_edges(vid))
            if reverse_index is not None:
                per_rlabel: dict[str, int] = {}
                for label, src, eprops in reverse_index.get(vid, ()):
                    rlabel = "~" + label
                    seq = per_rlabel.get(rlabel, 0)
                    per_rlabel[rlabel] = seq + 1
                    items.append(
                        (
                            enc.edge_key("~" + ns, vid, rlabel, seq),
                            enc.pack_edge_record(src, eprops),
                        )
                    )
            if self.edge_layout == "grouped":
                per_label: dict[str, int] = {}
                for label, dst, eprops in edges:
                    seq = per_label.get(label, 0)
                    per_label[label] = seq + 1
                    items.append(
                        (enc.edge_key(ns, vid, label, seq), enc.pack_edge_record(dst, eprops))
                    )
            else:
                for seq, (label, dst, eprops) in enumerate(edges):
                    tagged = {**eprops, _LABEL_PROP: label}
                    items.append(
                        (
                            enc.edge_key_interleaved(ns, vid, label, seq),
                            enc.pack_edge_record(dst, tagged),
                        )
                    )
        items.sort(key=lambda kv: kv[0])
        if items:
            self.kv.bulk_load(items)
        return count

    def _index_vertex(self, vid: VertexId, ns: str) -> None:
        self._ns_of[vid] = ns
        self._by_type.setdefault(ns, []).append(vid)

    # -- live updates -----------------------------------------------------

    def insert_vertex(self, vid: VertexId, vtype: str, props: dict[str, Any]) -> None:
        """Live insert of a vertex (memtable path)."""
        self._index_vertex(vid, vtype)
        self.kv.put(enc.attr_key(vtype, vid, "__type"), enc.pack_value(vtype))
        for prop, packed in enc.iter_props_pairs(props):
            self.kv.put(enc.attr_key(vtype, vid, prop), packed)

    def insert_edge(
        self, src: VertexId, dst: VertexId, label: str, props: dict[str, Any]
    ) -> None:
        """Live insert of an out-edge of a locally stored vertex."""
        ns = self._require_ns(src)
        if self.edge_layout == "grouped":
            prefix = enc.edges_prefix(ns, src, label)
            existing, _ = self.kv.scan_prefix(prefix)
            seq = len(existing)
            self.kv.put(enc.edge_key(ns, src, label, seq), enc.pack_edge_record(dst, props))
        else:
            existing, _ = self.kv.scan_prefix(enc.all_edges_prefix(ns, src))
            seq = len(existing)
            tagged = {**props, _LABEL_PROP: label}
            self.kv.put(
                enc.edge_key_interleaved(ns, src, label, seq),
                enc.pack_edge_record(dst, tagged),
            )

    def set_vertex_prop(self, vid: VertexId, prop: str, value: Any) -> None:
        ns = self._require_ns(vid)
        self.kv.put(enc.attr_key(ns, vid, prop), enc.pack_value(value))

    def delete_vertex(self, vid: VertexId) -> None:
        """Remove a vertex, its attributes, and its out-edges."""
        ns = self._require_ns(vid)
        pairs, _ = self.kv.scan_prefix(enc.vertex_prefix(ns, vid))
        rpairs, _ = self.kv.scan_prefix(enc.vertex_prefix("~" + ns, vid))
        for key, _ in list(pairs) + list(rpairs):
            self.kv.delete(key)
        del self._ns_of[vid]
        self._by_type[ns].remove(vid)

    # -- shard migration (repro.rebalance) ---------------------------------

    def export_vertices(
        self, vids: Iterable[VertexId]
    ) -> tuple[tuple[tuple[bytes, bytes], ...], tuple[tuple[VertexId, str], ...]]:
        """Snapshot every KV pair belonging to ``vids`` for migration.

        Returns ``(pairs, meta)``: the raw key/value pairs (attributes,
        edges in whatever layout this store uses, and the ``~label``
        reverse-adjacency region) plus the ``(vid, namespace)`` entries the
        importing store needs for its location index. Raises
        :class:`~repro.errors.KeyNotFound` for a vertex this store does not
        own — the migrator validates ownership before exporting.
        """
        pairs: list[tuple[bytes, bytes]] = []
        meta: list[tuple[VertexId, str]] = []
        for vid in vids:
            ns = self._require_ns(vid)
            fwd, _ = self.kv.scan_prefix(enc.vertex_prefix(ns, vid))
            rev, _ = self.kv.scan_prefix(enc.vertex_prefix("~" + ns, vid))
            pairs.extend(fwd)
            pairs.extend(rev)
            meta.append((vid, ns))
        return tuple(pairs), tuple(meta)

    def import_vertices(
        self,
        pairs: Iterable[tuple[bytes, bytes]],
        meta: Iterable[tuple[VertexId, str]],
    ) -> int:
        """Apply an exported chunk (memtable path). Idempotent: re-importing
        puts identical values under identical keys, and already-indexed
        vertices are not double-indexed. Returns newly indexed vertices."""
        for key, value in pairs:
            self.kv.put(key, value)
        added = 0
        for vid, ns in meta:
            if vid not in self._ns_of:
                self._index_vertex(vid, ns)
                added += 1
        return added

    def drop_vertices(self, vids: Iterable[VertexId]) -> int:
        """Remove migrated vertices (attributes, edges, reverse region).
        Vertices this store does not hold are skipped, so the post-cutover
        source drop is idempotent. Returns how many were dropped."""
        dropped = 0
        for vid in vids:
            if vid in self._ns_of:
                self.delete_vertex(vid)
                dropped += 1
        return dropped

    # -- reads -------------------------------------------------------------

    def has_vertex(self, vid: VertexId) -> bool:
        return vid in self._ns_of

    def namespace_of(self, vid: VertexId) -> Optional[str]:
        return self._ns_of.get(vid)

    def _require_ns(self, vid: VertexId) -> str:
        ns = self._ns_of.get(vid)
        if ns is None:
            raise KeyNotFound(f"vertex {vid} is not stored on this server")
        return ns

    def vertex_props(self, vid: VertexId) -> tuple[dict[str, Any], IOCost]:
        """All properties of a local vertex (one sequential attribute scan).

        The reserved ``type`` property is included, mirroring
        :meth:`repro.graph.vertex.Vertex.effective_props`.
        """
        ns = self._require_ns(vid)
        pairs, cost = self.kv.scan_prefix(enc.attrs_prefix(ns, vid))
        props: dict[str, Any] = {}
        for key, value in pairs:
            _, _, prop = enc.parse_attr_key(key)
            decoded, _ = enc.unpack_value(value)
            if prop == "__type":
                props.setdefault("type", decoded)
            else:
                props[prop] = decoded
        if not props:
            raise KeyNotFound(f"vertex {vid} vanished from the store")
        return props, cost

    def edges(
        self, vid: VertexId, label: str, pred=None
    ) -> tuple[list[tuple[VertexId, dict[str, Any]]], IOCost]:
        """Out-edges of ``vid`` with ``label``.

        Grouped layout: one sequential scan of exactly that label's run.
        Interleaved layout: the whole edge block must be scanned and
        filtered — the extra I/O the paper's grouping avoids.

        ``pred`` (edge-props dict → bool) is evaluated *inside* the storage
        scan: rejected edges never surface to the engine (the planner's
        predicate pushdown). The scan cost is unchanged — the same blocks
        are read — but the surfaced record count shrinks.

        A ``~label`` reads the materialized reverse-adjacency region, which
        is always label-grouped regardless of ``edge_layout``.
        """
        ns = self._require_ns(vid)
        if label.startswith("~"):
            ns = "~" + ns
        if self.edge_layout == "grouped" or label.startswith("~"):
            prefix = enc.edges_prefix(ns, vid, label)
            if pred is None:
                pairs, cost = self.kv.scan_prefix(prefix)
            else:
                def accept(key: bytes, value: bytes) -> bool:
                    _, props = enc.unpack_edge_record(value)
                    return pred(props)

                pairs, cost = self.kv.scan_filtered(
                    prefix, enc.prefix_end(prefix), accept
                )
            out = [enc.unpack_edge_record(value) for _, value in pairs]
            return out, cost
        preds = {label: pred} if pred is not None else None
        all_edges, cost = self.all_edges(vid, preds)
        return [(dst, props) for lbl, dst, props in all_edges if lbl == label], cost

    def all_edges(
        self, vid: VertexId, preds: Optional[dict[str, Any]] = None
    ) -> tuple[list[tuple[str, VertexId, dict[str, Any]]], IOCost]:
        """Every out-edge of ``vid`` across labels (label, dst, props).

        ``preds`` maps label → (edge-props dict → bool); edges whose label
        has a predicate that rejects them are dropped inside the scan.
        Labels without a predicate always pass.
        """
        ns = self._require_ns(vid)
        prefix = enc.all_edges_prefix(ns, vid)

        def decode(key: bytes, value: bytes):
            dst, props = enc.unpack_edge_record(value)
            if self.edge_layout == "grouped":
                _, _, label, _ = enc.parse_edge_key(key)
            else:
                label = props.pop(_LABEL_PROP)
            return label, dst, props

        if preds:
            def accept(key: bytes, value: bytes) -> bool:
                label, _, props = decode(key, value)
                pred = preds.get(label)
                return pred is None or pred(props)

            pairs, cost = self.kv.scan_filtered(prefix, enc.prefix_end(prefix), accept)
        else:
            pairs, cost = self.kv.scan_prefix(prefix)
        return [decode(key, value) for key, value in pairs], cost

    # -- index queries (served from the in-memory location index) ----------

    def local_vertices(self) -> list[VertexId]:
        return list(self._ns_of.keys())

    def local_vertices_of_type(self, vtype: str) -> list[VertexId]:
        return list(self._by_type.get(vtype, []))

    def vertex_count(self) -> int:
        return len(self._ns_of)

    # -- maintenance ---------------------------------------------------------

    def cold_start(self) -> None:
        """Drop the block cache, as the paper does before each measured run."""
        self.kv.cache.clear()

    def metrics_snapshot(self) -> dict[str, int]:
        """Storage counters (LSM ops, block cache, bloom filters)."""
        return self.kv.metrics_snapshot()
