"""Graph-on-KV layout: one server's slice of the property graph.

:class:`GraphStore` owns an :class:`~repro.storage.lsm.LSMStore` and maps a
partition of the property graph onto it using the paper's layout (§VI):

* each vertex attribute is one KV pair, all attributes of a vertex adjacent;
* each edge is one KV pair; edges of the same label are contiguous, so
  iterating one label is a single seek plus sequential blocks;
* different vertex types live in separate key namespaces.

A small in-memory index maps vertex id -> namespace (vertex type). This
plays the role of the underlying graph database's location/lookup service —
the paper notes the storage layer "mainly includes the location of a given
vertex and edges".

All read methods return ``(result, IOCost)``.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.errors import KeyNotFound, UnknownEdgeLayout
from repro.graph.builder import PropertyGraph
from repro.ids import VertexId
from repro.storage import columnar, encoding as enc
from repro.storage.costmodel import IOCost
from repro.storage.lsm import LSMConfig, LSMStore


#: reserved edge property carrying the label in the interleaved layout
_LABEL_PROP = "__label"

#: registered edge layouts — the single source of truth for validation
EDGE_LAYOUTS = ("grouped", "interleaved", "columnar")


def validate_edge_layout(name: str) -> str:
    """Return ``name`` if it is a registered layout, else raise the typed
    :class:`~repro.errors.UnknownEdgeLayout` configuration error."""
    if name not in EDGE_LAYOUTS:
        raise UnknownEdgeLayout(name, EDGE_LAYOUTS)
    return name


class GraphStore:
    """One backend server's graph storage.

    ``edge_layout`` selects how a vertex's edges map to keys:

    * ``"grouped"`` (default, the paper's design): one KV pair per edge,
      sorted by label, so a single-label scan touches only that label's
      contiguous run;
    * ``"interleaved"`` (ablation baseline, generic column layouts): one
      KV pair per edge, sorted by insertion order, so any label-selective
      scan reads the vertex's whole edge block;
    * ``"columnar"``: one KV pair per ``(vertex, label)`` holding every
      neighbor as a delta/varint-compressed
      :class:`~repro.storage.columnar.AdjacencyBlock` — a whole adjacency
      list is one point lookup plus one decode, and bytes/edge drops to the
      delta-packed column size.

    A columnar store remains able to read vertices whose edges arrived as
    legacy entry-per-edge records (a grouped-era checkpoint restored, or a
    migration chunk exported from a grouped source): those vertices are
    tracked in ``_legacy_edge_vids`` and their reads transparently merge
    the old ``'E'`` key region with the block region.
    """

    def __init__(self, config: Optional[LSMConfig] = None, edge_layout: str = "grouped"):
        self.kv = LSMStore(config)
        self.edge_layout = validate_edge_layout(edge_layout)
        self._ns_of: dict[VertexId, str] = {}  # vertex location/type index
        self._by_type: dict[str, list[VertexId]] = {}
        #: vertices whose out-edges (also) live as entry-per-edge records
        self._legacy_edge_vids: set[VertexId] = set()
        #: forward-edge storage footprint (keys + values) and edge count,
        #: surfaced as the ``storage.bytes_per_edge`` gauge
        self._edge_bytes = 0
        self._edge_count = 0
        #: columnar decode counters (block decode throughput attribution)
        self.decoded_blocks = 0
        self.decoded_edges = 0
        #: decode-once memo, content-addressed (bytes → decoded pairs): a
        #: re-read of an unchanged block skips the varint/props decode
        #: entirely. Simulated I/O is charged before decode, so this only
        #: removes repeated in-process work, never accounted disk cost.
        self._decode_memo: dict[bytes, tuple] = {}

    # -- loading ---------------------------------------------------------

    def load_partition(
        self,
        graph: PropertyGraph,
        vids: Iterable[VertexId],
        reverse_index: Optional[dict[VertexId, list]] = None,
    ) -> int:
        """Bulk-load the given vertices (attributes + out-edges) from ``graph``.

        Returns the number of vertices loaded. Uses SSTable ingestion, so the
        data starts compact and cold, as in the paper's cold-start runs.

        ``reverse_index`` (vertex id → ``[(label, src, eprops), ...]`` of the
        edges *pointing at* it) additionally materializes reverse adjacency
        as ``~label`` edge records, so the cost-based planner can evaluate a
        chain backwards. Reverse edges share the forward edge's properties.
        They live in a disjoint ``~<ns>`` namespace (always label-grouped,
        whatever ``edge_layout`` is): the forward key region packs into
        exactly the same blocks whether or not the index is built, so plans
        that never go backwards pay nothing for it.
        """
        items: list[tuple[bytes, bytes]] = []
        count = 0
        for vid in vids:
            vertex = graph.vertex(vid)
            ns = vertex.vtype
            self._index_vertex(vid, ns)
            count += 1
            # Reserved attribute makes the vertex discoverable even when it
            # has no user properties.
            items.append((enc.attr_key(ns, vid, "__type"), enc.pack_value(ns)))
            for prop, packed in enc.iter_props_pairs(vertex.props):
                items.append((enc.attr_key(ns, vid, prop), packed))
            edges = list(graph.out_edges(vid))
            if reverse_index is not None:
                per_rlabel: dict[str, int] = {}
                for label, src, eprops in reverse_index.get(vid, ()):
                    rlabel = "~" + label
                    seq = per_rlabel.get(rlabel, 0)
                    per_rlabel[rlabel] = seq + 1
                    items.append(
                        (
                            enc.edge_key("~" + ns, vid, rlabel, seq),
                            enc.pack_edge_record(src, eprops),
                        )
                    )
            if self.edge_layout == "grouped":
                per_label: dict[str, int] = {}
                for label, dst, eprops in edges:
                    seq = per_label.get(label, 0)
                    per_label[label] = seq + 1
                    self._account_edges(
                        enc.edge_key(ns, vid, label, seq),
                        enc.pack_edge_record(dst, eprops),
                        1,
                        items,
                    )
            elif self.edge_layout == "interleaved":
                for seq, (label, dst, eprops) in enumerate(edges):
                    tagged = {**eprops, _LABEL_PROP: label}
                    self._account_edges(
                        enc.edge_key_interleaved(ns, vid, label, seq),
                        enc.pack_edge_record(dst, tagged),
                        1,
                        items,
                    )
            else:  # columnar: one delta/varint block per (vertex, label)
                by_label: dict[str, list] = {}
                for label, dst, eprops in edges:
                    by_label.setdefault(label, []).append((dst, eprops))
                for label, pairs in by_label.items():
                    block = columnar.AdjacencyBlock.from_edges(vid, label, pairs)
                    self._account_edges(
                        enc.edge_block_key(ns, vid, label),
                        block.encode(),
                        len(pairs),
                        items,
                    )
        items.sort(key=lambda kv: kv[0])
        if items:
            self.kv.bulk_load(items)
        return count

    def _index_vertex(self, vid: VertexId, ns: str) -> None:
        self._ns_of[vid] = ns
        self._by_type.setdefault(ns, []).append(vid)

    def _account_edges(
        self,
        key: bytes,
        value: bytes,
        n_edges: int,
        items: Optional[list[tuple[bytes, bytes]]] = None,
        sign: int = 1,
    ) -> None:
        """Track the forward-edge footprint for the bytes/edge gauge; with
        ``items`` given, also append the pair to a bulk-load batch."""
        self._edge_bytes += sign * (len(key) + len(value))
        self._edge_count += sign * n_edges
        if items is not None:
            items.append((key, value))

    # -- live updates -----------------------------------------------------

    def insert_vertex(self, vid: VertexId, vtype: str, props: dict[str, Any]) -> None:
        """Live insert of a vertex (memtable path)."""
        self._index_vertex(vid, vtype)
        self.kv.put(enc.attr_key(vtype, vid, "__type"), enc.pack_value(vtype))
        for prop, packed in enc.iter_props_pairs(props):
            self.kv.put(enc.attr_key(vtype, vid, prop), packed)

    def insert_edge(
        self, src: VertexId, dst: VertexId, label: str, props: dict[str, Any]
    ) -> None:
        """Live insert of an out-edge of a locally stored vertex."""
        ns = self._require_ns(src)
        if self.edge_layout == "grouped":
            prefix = enc.edges_prefix(ns, src, label)
            existing, _ = self.kv.scan_prefix(prefix)
            seq = len(existing)
            key = enc.edge_key(ns, src, label, seq)
            value = enc.pack_edge_record(dst, props)
            self._account_edges(key, value, 1)
            self.kv.put(key, value)
        elif self.edge_layout == "interleaved":
            existing, _ = self.kv.scan_prefix(enc.all_edges_prefix(ns, src))
            seq = len(existing)
            tagged = {**props, _LABEL_PROP: label}
            key = enc.edge_key_interleaved(ns, src, label, seq)
            value = enc.pack_edge_record(dst, tagged)
            self._account_edges(key, value, 1)
            self.kv.put(key, value)
        else:  # columnar: read-modify-write the (vertex, label) block
            key = enc.edge_block_key(ns, src, label)
            old, _ = self.kv.get(key)
            pairs = self._decode_block(src, label, old) if old is not None else []
            pairs.append((dst, props))
            value = columnar.AdjacencyBlock.from_edges(src, label, pairs).encode()
            self._edge_count += 1
            self._edge_bytes += len(value) - (
                len(old) if old is not None else -len(key)
            )
            self.kv.put(key, value)

    def set_vertex_prop(self, vid: VertexId, prop: str, value: Any) -> None:
        ns = self._require_ns(vid)
        self.kv.put(enc.attr_key(ns, vid, prop), enc.pack_value(value))

    def delete_vertex(self, vid: VertexId) -> None:
        """Remove a vertex, its attributes, and its out-edges."""
        ns = self._require_ns(vid)
        pairs, _ = self.kv.scan_prefix(enc.vertex_prefix(ns, vid))
        rpairs, _ = self.kv.scan_prefix(enc.vertex_prefix("~" + ns, vid))
        for key, value in pairs:
            tag = enc.vertex_key_tag(key)[2]
            if tag == b"E":
                self._account_edges(key, value, 1, sign=-1)
            elif tag == b"B":
                self._account_edges(
                    key, value, columnar.block_entry_count(value), sign=-1
                )
            self.kv.delete(key)
        for key, _ in rpairs:
            self.kv.delete(key)
        del self._ns_of[vid]
        self._by_type[ns].remove(vid)
        self._legacy_edge_vids.discard(vid)

    # -- shard migration (repro.rebalance) ---------------------------------

    def export_vertices(
        self, vids: Iterable[VertexId]
    ) -> tuple[tuple[tuple[bytes, bytes], ...], tuple[tuple[VertexId, str], ...]]:
        """Snapshot every KV pair belonging to ``vids`` for migration.

        Returns ``(pairs, meta)``: the raw key/value pairs (attributes,
        edges in whatever layout this store uses, and the ``~label``
        reverse-adjacency region) plus the ``(vid, namespace)`` entries the
        importing store needs for its location index. Raises
        :class:`~repro.errors.KeyNotFound` for a vertex this store does not
        own — the migrator validates ownership before exporting.
        """
        pairs: list[tuple[bytes, bytes]] = []
        meta: list[tuple[VertexId, str]] = []
        for vid in vids:
            ns = self._require_ns(vid)
            fwd, _ = self.kv.scan_prefix(enc.vertex_prefix(ns, vid))
            rev, _ = self.kv.scan_prefix(enc.vertex_prefix("~" + ns, vid))
            pairs.extend(fwd)
            pairs.extend(rev)
            meta.append((vid, ns))
        return tuple(pairs), tuple(meta)

    def import_vertices(
        self,
        pairs: Iterable[tuple[bytes, bytes]],
        meta: Iterable[tuple[VertexId, str]],
    ) -> int:
        """Apply an exported chunk (memtable path). Idempotent: re-importing
        puts identical values under identical keys, and already-indexed
        vertices are not double-indexed. Returns newly indexed vertices.

        Chunks exported from another layout are absorbed as-is: a columnar
        store receiving legacy entry-per-edge records marks their vertices
        in ``_legacy_edge_vids`` so reads merge the old key region, and the
        bytes/edge accounting follows whatever representation arrived.
        """
        fresh = {vid for vid, _ in meta if vid not in self._ns_of}
        for key, value in pairs:
            kns, vid, tag = enc.vertex_key_tag(key)
            if not kns.startswith("~"):
                if tag == b"E":
                    if self.edge_layout == "columnar":
                        self._legacy_edge_vids.add(vid)
                    if vid in fresh:
                        self._account_edges(key, value, 1)
                elif tag == b"B" and vid in fresh:
                    self._account_edges(
                        key, value, columnar.block_entry_count(value)
                    )
            self.kv.put(key, value)
        added = 0
        for vid, ns in meta:
            if vid not in self._ns_of:
                self._index_vertex(vid, ns)
                added += 1
        return added

    def drop_vertices(self, vids: Iterable[VertexId]) -> int:
        """Remove migrated vertices (attributes, edges, reverse region).
        Vertices this store does not hold are skipped, so the post-cutover
        source drop is idempotent. Returns how many were dropped."""
        dropped = 0
        for vid in vids:
            if vid in self._ns_of:
                self.delete_vertex(vid)
                dropped += 1
        return dropped

    # -- reads -------------------------------------------------------------

    def has_vertex(self, vid: VertexId) -> bool:
        return vid in self._ns_of

    def namespace_of(self, vid: VertexId) -> Optional[str]:
        return self._ns_of.get(vid)

    def _require_ns(self, vid: VertexId) -> str:
        ns = self._ns_of.get(vid)
        if ns is None:
            raise KeyNotFound(f"vertex {vid} is not stored on this server")
        return ns

    def vertex_props(self, vid: VertexId) -> tuple[dict[str, Any], IOCost]:
        """All properties of a local vertex (one sequential attribute scan).

        The reserved ``type`` property is included, mirroring
        :meth:`repro.graph.vertex.Vertex.effective_props`.
        """
        ns = self._require_ns(vid)
        pairs, cost = self.kv.scan_prefix(enc.attrs_prefix(ns, vid))
        props: dict[str, Any] = {}
        for key, value in pairs:
            _, _, prop = enc.parse_attr_key(key)
            decoded, _ = enc.unpack_value(value)
            if prop == "__type":
                props.setdefault("type", decoded)
            else:
                props[prop] = decoded
        if not props:
            raise KeyNotFound(f"vertex {vid} vanished from the store")
        return props, cost

    def edges(
        self, vid: VertexId, label: str, pred=None
    ) -> tuple[list[tuple[VertexId, dict[str, Any]]], IOCost]:
        """Out-edges of ``vid`` with ``label``.

        Grouped layout: one sequential scan of exactly that label's run.
        Interleaved layout: the whole edge block must be scanned and
        filtered — the extra I/O the paper's grouping avoids.

        ``pred`` (edge-props dict → bool) is evaluated *inside* the storage
        scan: rejected edges never surface to the engine (the planner's
        predicate pushdown). The scan cost is unchanged — the same blocks
        are read — but the surfaced record count shrinks.

        A ``~label`` reads the materialized reverse-adjacency region, which
        is always label-grouped regardless of ``edge_layout``.

        Columnar layout: one point lookup fetches the whole
        ``(vertex, label)`` block, decoded once; ``pred`` is applied to the
        decoded column (the rejected count still lands in
        ``entries_filtered``, mirroring the scan-pushdown contract).
        """
        ns = self._require_ns(vid)
        if label.startswith("~"):
            ns = "~" + ns
        elif self.edge_layout == "columnar":
            return self._edges_columnar(ns, vid, label, pred)
        if self.edge_layout == "grouped" or label.startswith("~"):
            prefix = enc.edges_prefix(ns, vid, label)
            if pred is None:
                pairs, cost = self.kv.scan_prefix(prefix)
            else:
                def accept(key: bytes, value: bytes) -> bool:
                    _, props = enc.unpack_edge_record(value)
                    return pred(props)

                pairs, cost = self.kv.scan_filtered(
                    prefix, enc.prefix_end(prefix), accept
                )
            out = [enc.unpack_edge_record(value) for _, value in pairs]
            return out, cost
        preds = {label: pred} if pred is not None else None
        all_edges, cost = self.all_edges(vid, preds)
        return [(dst, props) for lbl, dst, props in all_edges if lbl == label], cost

    def _decode_block(
        self, vid: VertexId, label: str, value: bytes
    ) -> list[tuple[VertexId, dict[str, Any]]]:
        """Decode one adjacency block, tracking decode-throughput counters.

        Returns a fresh list every call (callers may append before
        re-encoding); the decoded column itself is memoized per block
        content, so only the first read of a given byte string pays the
        varint decode.
        """
        cached = self._decode_memo.get(value)
        if cached is not None:
            return list(cached)
        block = columnar.AdjacencyBlock.decode(vid, label, value)
        self.decoded_blocks += 1
        self.decoded_edges += len(block.targets)
        pairs = block.pairs()
        if len(self._decode_memo) >= 65536:
            self._decode_memo.clear()
        self._decode_memo[value] = tuple(pairs)
        return pairs

    def _filter_decoded(
        self, pairs: list[tuple[VertexId, dict[str, Any]]], pred
    ) -> list[tuple[VertexId, dict[str, Any]]]:
        """Post-decode predicate pushdown: same rejected-entry accounting as
        the scan-level filter, applied to a decoded column."""
        if pred is None:
            return pairs
        kept = [(dst, p) for dst, p in pairs if pred(p)]
        self.kv.stats.entries_filtered += len(pairs) - len(kept)
        return kept

    def _edges_columnar(
        self, ns: str, vid: VertexId, label: str, pred
    ) -> tuple[list[tuple[VertexId, dict[str, Any]]], IOCost]:
        value, cost = self.kv.get(enc.edge_block_key(ns, vid, label))
        out: list[tuple[VertexId, dict[str, Any]]] = []
        if value is not None:
            out = self._filter_decoded(self._decode_block(vid, label, value), pred)
        if vid in self._legacy_edge_vids:
            # backward-compat read: this vertex's edges (also) live as
            # legacy grouped entry-per-edge records
            prefix = enc.edges_prefix(ns, vid, label)
            if pred is None:
                pairs, c = self.kv.scan_prefix(prefix)
            else:
                def accept(key: bytes, val: bytes) -> bool:
                    _, props = enc.unpack_edge_record(val)
                    return pred(props)

                pairs, c = self.kv.scan_filtered(
                    prefix, enc.prefix_end(prefix), accept
                )
            cost += c
            out.extend(enc.unpack_edge_record(val) for _, val in pairs)
        return out, cost

    def all_edges(
        self, vid: VertexId, preds: Optional[dict[str, Any]] = None
    ) -> tuple[list[tuple[str, VertexId, dict[str, Any]]], IOCost]:
        """Every out-edge of ``vid`` across labels (label, dst, props).

        ``preds`` maps label → (edge-props dict → bool); edges whose label
        has a predicate that rejects them are dropped inside the scan.
        Labels without a predicate always pass.
        """
        ns = self._require_ns(vid)
        if self.edge_layout == "columnar":
            return self._all_edges_columnar(ns, vid, preds)
        prefix = enc.all_edges_prefix(ns, vid)

        def decode(key: bytes, value: bytes):
            dst, props = enc.unpack_edge_record(value)
            if self.edge_layout == "grouped":
                _, _, label, _ = enc.parse_edge_key(key)
            else:
                label = props.pop(_LABEL_PROP)
            return label, dst, props

        if preds:
            def accept(key: bytes, value: bytes) -> bool:
                label, _, props = decode(key, value)
                pred = preds.get(label)
                return pred is None or pred(props)

            pairs, cost = self.kv.scan_filtered(prefix, enc.prefix_end(prefix), accept)
        else:
            pairs, cost = self.kv.scan_prefix(prefix)
        return [decode(key, value) for key, value in pairs], cost

    def _all_edges_columnar(
        self, ns: str, vid: VertexId, preds: Optional[dict[str, Any]] = None
    ) -> tuple[list[tuple[str, VertexId, dict[str, Any]]], IOCost]:
        blocks, cost = self.kv.scan_prefix(enc.edge_blocks_prefix(ns, vid))
        out: list[tuple[str, VertexId, dict[str, Any]]] = []
        for key, value in blocks:
            _, _, label = enc.parse_edge_block_key(key)
            decoded = self._filter_decoded(
                self._decode_block(vid, label, value),
                preds.get(label) if preds else None,
            )
            out.extend((label, dst, p) for dst, p in decoded)
        if vid in self._legacy_edge_vids:
            prefix = enc.all_edges_prefix(ns, vid)

            def decode(key: bytes, value: bytes):
                dst, props = enc.unpack_edge_record(value)
                _, _, label, _ = enc.parse_edge_key(key)
                return label, dst, props

            if preds:
                def accept(key: bytes, value: bytes) -> bool:
                    label, _, props = decode(key, value)
                    pred = preds.get(label)
                    return pred is None or pred(props)

                pairs, c = self.kv.scan_filtered(
                    prefix, enc.prefix_end(prefix), accept
                )
            else:
                pairs, c = self.kv.scan_prefix(prefix)
            cost += c
            out.extend(decode(key, value) for key, value in pairs)
        return out, cost

    # -- index queries (served from the in-memory location index) ----------

    def local_vertices(self) -> list[VertexId]:
        return list(self._ns_of.keys())

    def local_vertices_of_type(self, vtype: str) -> list[VertexId]:
        return list(self._by_type.get(vtype, []))

    def vertex_count(self) -> int:
        return len(self._ns_of)

    # -- maintenance ---------------------------------------------------------

    def cold_start(self) -> None:
        """Drop the block cache, as the paper does before each measured run."""
        self.kv.cache.clear()

    def rebuild_edge_accounting(self) -> None:
        """Recompute the bytes/edge gauge and the legacy-edge vid set from
        the store's live contents.

        A checkpoint restore brings back raw SSTables without replaying the
        writes that maintain the incremental accounting, so
        :func:`~repro.storage.persist.restore_graph_store` calls this once
        after loading. Also classifies restored entry-per-edge records on a
        columnar store as legacy data needing the merge read path.
        """
        from repro.storage.memtable import TOMBSTONE
        from repro.storage.sstable import merge_runs

        self._edge_bytes = 0
        self._edge_count = 0
        self._legacy_edge_vids = set()
        runs: list[list[tuple[bytes, object]]] = [self.kv.memtable.items_sorted()]
        runs.extend(list(zip(t.keys, t.values)) for t in self.kv.sstables)
        for key, value in merge_runs(runs, drop_tombstones=True):
            if value is TOMBSTONE or key.split(b"\x00", 1)[0].startswith(b"~"):
                continue
            _, vid, tag = enc.vertex_key_tag(key)
            if tag == b"E":
                if self.edge_layout == "columnar":
                    self._legacy_edge_vids.add(vid)
                self._account_edges(key, value, 1)
            elif tag == b"B":
                self._account_edges(key, value, columnar.block_entry_count(value))

    def metrics_snapshot(self) -> dict[str, float]:
        """Storage counters (LSM ops, block cache, bloom filters) plus the
        columnar decode counters and the bytes/edge gauge.

        Every key is published per server as a ``storage.<name>`` gauge by
        the cluster's telemetry collector — ``storage.bytes_per_edge`` is
        the figure the columnar bench ablation reports.
        """
        snap: dict[str, float] = dict(self.kv.metrics_snapshot())
        snap["decoded_blocks"] = self.decoded_blocks
        snap["decoded_edges"] = self.decoded_edges
        snap["edge_count"] = self._edge_count
        snap["edge_bytes"] = self._edge_bytes
        if self._edge_count > 0:
            snap["bytes_per_edge"] = round(self._edge_bytes / self._edge_count, 3)
        return snap
