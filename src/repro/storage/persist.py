"""File-backed persistence: checkpoint and restore a server's store.

The paper runs RocksDB either on local disks (fast) or on GPFS "for fault
tolerance against server failures" (§VII) — the store's files surviving the
server is what makes a failed backend recoverable. This module provides that
durability for the pure-Python store: an :class:`~repro.storage.lsm.LSMStore`
checkpoints to a directory (one file per SSTable plus a manifest; the
memtable is flushed first, so a checkpoint is always a consistent frozen
state) and restores from it.

File format (version 2)::

    MANIFEST          json: version, table file names, counts, per-file
                      crc32s, and the manifest's own checksum over those
                      fields
    000001.sst ...    per table:  [u32 entry count] then per entry
                      [u32 key len][key][u8 tombstone][u32 value len][value]
                      followed by a [u32 crc32] footer over everything
                      before it

Every integrity failure on restore — truncation, a CRC mismatch, a table
whose shape disagrees with the manifest — raises the typed
:class:`~repro.errors.CorruptCheckpoint` instead of silently truncating.

The module also exposes the framed-record primitives
(:func:`pack_record` / :func:`iter_records`) shared with the coordinator's
traversal journal (:mod:`repro.cluster.journal`): every record is
``[u32 len][u32 crc32][payload]`` so a reader can detect both torn and
bit-rotted records with a typed error.

:class:`~repro.storage.layout.GraphStore` checkpoints add the vertex
location/type index alongside.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Iterator, Type, Union

from repro.errors import CorruptCheckpoint, StorageError
from repro.storage.layout import GraphStore, validate_edge_layout
from repro.storage.lsm import LSMConfig, LSMStore
from repro.storage.memtable import TOMBSTONE
from repro.storage.sstable import SSTable

_U32 = struct.Struct("<I")
_VERSION = 2
_MANIFEST = "MANIFEST"

# -- shared framed-record primitives (checkpoint tables + traversal journal) --


def pack_record(payload: bytes) -> bytes:
    """Frame ``payload`` as ``[u32 len][u32 crc32][payload]``."""
    return _U32.pack(len(payload)) + _U32.pack(zlib.crc32(payload)) + payload


def iter_records(
    data: bytes, error_cls: Type[StorageError] = CorruptCheckpoint
) -> Iterator[bytes]:
    """Yield the payloads of consecutive framed records in ``data``.

    Raises ``error_cls`` on a torn record (length prefix runs past the end
    of the buffer) or a CRC32 mismatch.
    """
    offset = 0
    end = len(data)
    while offset < end:
        if offset + 8 > end:
            raise error_cls(
                f"torn record header at byte {offset} ({end - offset} bytes left)"
            )
        (length,) = _U32.unpack_from(data, offset)
        (crc,) = _U32.unpack_from(data, offset + 4)
        start = offset + 8
        if start + length > end:
            raise error_cls(
                f"torn record at byte {offset}: length {length} runs past "
                f"end of buffer"
            )
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            raise error_cls(f"crc mismatch for record at byte {offset}")
        yield payload
        offset = start + length


def _manifest_checksum(manifest: dict) -> int:
    """CRC32 over the manifest's integrity-bearing fields, in a canonical
    serialization so a round trip through json is stable."""
    body = {k: v for k, v in sorted(manifest.items()) if k != "checksum"}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


def _write_table(path: Path, table: SSTable) -> int:
    """Write one SSTable file and return the CRC32 of its body (the same
    value stored in the file's footer and the manifest)."""
    crc = 0
    with path.open("wb") as fh:
        def emit(chunk: bytes) -> None:
            nonlocal crc
            crc = zlib.crc32(chunk, crc)
            fh.write(chunk)

        emit(_U32.pack(len(table)))
        for key, value in zip(table.keys, table.values):
            emit(_U32.pack(len(key)))
            emit(key)
            if value is TOMBSTONE:
                emit(b"\x01")
                emit(_U32.pack(0))
            else:
                emit(b"\x00")
                emit(_U32.pack(len(value)))  # type: ignore[arg-type]
                emit(value)  # type: ignore[arg-type]
        fh.write(_U32.pack(crc))
    return crc


def _read_exact(fh, n: int, path: Path) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise CorruptCheckpoint(f"truncated SSTable file {path.name}")
    return data


def _read_table(path: Path) -> tuple[list[tuple[bytes, object]], int]:
    """Read one SSTable file, verifying its CRC32 footer. Returns the
    entries and the body CRC (for cross-checking against the manifest)."""
    entries: list[tuple[bytes, object]] = []
    crc = 0
    with path.open("rb") as fh:
        def take(n: int) -> bytes:
            nonlocal crc
            chunk = _read_exact(fh, n, path)
            crc = zlib.crc32(chunk, crc)
            return chunk

        (count,) = _U32.unpack(take(4))
        for _ in range(count):
            (klen,) = _U32.unpack(take(4))
            key = take(klen)
            tombstone = take(1) == b"\x01"
            (vlen,) = _U32.unpack(take(4))
            value: object = TOMBSTONE if tombstone else take(vlen)
            entries.append((key, value))
        (stored,) = _U32.unpack(_read_exact(fh, 4, path))
        if stored != crc:
            raise CorruptCheckpoint(
                f"crc mismatch in SSTable file {path.name}: "
                f"footer {stored:#010x}, computed {crc:#010x}"
            )
    return entries, crc


def checkpoint_store(store: LSMStore, directory: Union[str, Path]) -> Path:
    """Write a consistent checkpoint of ``store`` into ``directory``.

    Flushes the memtable first, so the checkpoint captures every write that
    returned before the call. Overwrites any previous checkpoint there.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    store.flush()
    names = []
    crcs = []
    for i, table in enumerate(store.sstables):  # newest first
        name = f"{i:06d}.sst"
        crcs.append(_write_table(directory / name, table))
        names.append(name)
    manifest = {
        "version": _VERSION,
        "tables": names,  # order: newest first
        "entries": [len(t) for t in store.sstables],
        "crcs": crcs,
    }
    manifest["checksum"] = _manifest_checksum(manifest)
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return directory


def restore_store(
    directory: Union[str, Path], config: Union[LSMConfig, None] = None
) -> LSMStore:
    """Rebuild an :class:`LSMStore` from a checkpoint directory.

    Raises :class:`~repro.errors.CorruptCheckpoint` when any table file or
    the manifest fails its integrity check.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise StorageError(f"no checkpoint manifest in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as exc:
        raise CorruptCheckpoint(f"unreadable checkpoint manifest: {exc}") from exc
    if manifest.get("version") != _VERSION:
        raise StorageError(f"unsupported checkpoint version {manifest.get('version')}")
    if manifest.get("checksum") != _manifest_checksum(manifest):
        raise CorruptCheckpoint("checkpoint manifest failed its checksum")
    store = LSMStore(config)
    for name, expected, want_crc in zip(
        manifest["tables"], manifest["entries"], manifest["crcs"]
    ):
        path = directory / name
        if not path.exists():
            raise CorruptCheckpoint(f"checkpoint table {name} is missing")
        entries, crc = _read_table(path)
        if crc != want_crc:
            raise CorruptCheckpoint(
                f"checkpoint table {name} crc {crc:#010x} does not match "
                f"manifest {want_crc:#010x}"
            )
        if len(entries) != expected:
            raise CorruptCheckpoint(
                f"checkpoint table {name} has {len(entries)} entries, "
                f"expected {expected}"
            )
        store.sstables.append(SSTable(entries, store.config.bloom_fp_rate))
    return store


def checkpoint_graph_store(gstore: GraphStore, directory: Union[str, Path]) -> Path:
    """Checkpoint a server's graph store: KV data, vertex index, layout."""
    directory = Path(directory)
    checkpoint_store(gstore.kv, directory)
    payload = {
        "layout": gstore.edge_layout,
        "index": {str(vid): ns for vid, ns in gstore._ns_of.items()},
    }
    (directory / "vertex_index.json").write_text(json.dumps(payload))
    return directory


def restore_graph_store(
    directory: Union[str, Path], config: Union[LSMConfig, None] = None
) -> GraphStore:
    """Rebuild a server's :class:`GraphStore` from a checkpoint.

    The recorded layout name is validated: a manifest naming a layout this
    build does not know raises the typed
    :class:`~repro.errors.UnknownEdgeLayout` instead of silently restoring
    under the default. A pre-layout checkpoint (no ``layout`` field) keeps
    the historical ``"grouped"`` default.
    """
    directory = Path(directory)
    index_path = directory / "vertex_index.json"
    if not index_path.exists():
        raise StorageError(f"no vertex index in {directory}")
    payload = json.loads(index_path.read_text())
    layout = validate_edge_layout(payload.get("layout", "grouped"))
    gstore = GraphStore(config, edge_layout=layout)
    gstore.kv = restore_store(directory, config or gstore.kv.config)
    for vid_str, ns in payload["index"].items():
        gstore._index_vertex(int(vid_str), ns)
    gstore.rebuild_edge_accounting()
    return gstore
