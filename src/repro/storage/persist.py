"""File-backed persistence: checkpoint and restore a server's store.

The paper runs RocksDB either on local disks (fast) or on GPFS "for fault
tolerance against server failures" (§VII) — the store's files surviving the
server is what makes a failed backend recoverable. This module provides that
durability for the pure-Python store: an :class:`~repro.storage.lsm.LSMStore`
checkpoints to a directory (one file per SSTable plus a manifest; the
memtable is flushed first, so a checkpoint is always a consistent frozen
state) and restores from it.

File format (version 1)::

    MANIFEST          json: version, table file names, counts
    000001.sst ...    per table:  [u32 entry count] then per entry
                      [u32 key len][key][u8 tombstone][u32 value len][value]

:class:`~repro.storage.layout.GraphStore` checkpoints add the vertex
location/type index alongside.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Union

from repro.errors import StorageError
from repro.storage.layout import GraphStore
from repro.storage.lsm import LSMConfig, LSMStore
from repro.storage.memtable import TOMBSTONE
from repro.storage.sstable import SSTable

_U32 = struct.Struct("<I")
_VERSION = 1
_MANIFEST = "MANIFEST"


def _write_table(path: Path, table: SSTable) -> None:
    with path.open("wb") as fh:
        fh.write(_U32.pack(len(table)))
        for key, value in zip(table.keys, table.values):
            fh.write(_U32.pack(len(key)))
            fh.write(key)
            if value is TOMBSTONE:
                fh.write(b"\x01")
                fh.write(_U32.pack(0))
            else:
                fh.write(b"\x00")
                fh.write(_U32.pack(len(value)))  # type: ignore[arg-type]
                fh.write(value)  # type: ignore[arg-type]


def _read_exact(fh, n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise StorageError("truncated SSTable file")
    return data


def _read_table(path: Path) -> list[tuple[bytes, object]]:
    entries: list[tuple[bytes, object]] = []
    with path.open("rb") as fh:
        (count,) = _U32.unpack(_read_exact(fh, 4))
        for _ in range(count):
            (klen,) = _U32.unpack(_read_exact(fh, 4))
            key = _read_exact(fh, klen)
            tombstone = _read_exact(fh, 1) == b"\x01"
            (vlen,) = _U32.unpack(_read_exact(fh, 4))
            value: object = TOMBSTONE if tombstone else _read_exact(fh, vlen)
            entries.append((key, value))
    return entries


def checkpoint_store(store: LSMStore, directory: Union[str, Path]) -> Path:
    """Write a consistent checkpoint of ``store`` into ``directory``.

    Flushes the memtable first, so the checkpoint captures every write that
    returned before the call. Overwrites any previous checkpoint there.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    store.flush()
    names = []
    for i, table in enumerate(store.sstables):  # newest first
        name = f"{i:06d}.sst"
        _write_table(directory / name, table)
        names.append(name)
    manifest = {
        "version": _VERSION,
        "tables": names,  # order: newest first
        "entries": [len(t) for t in store.sstables],
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return directory


def restore_store(
    directory: Union[str, Path], config: Union[LSMConfig, None] = None
) -> LSMStore:
    """Rebuild an :class:`LSMStore` from a checkpoint directory."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise StorageError(f"no checkpoint manifest in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != _VERSION:
        raise StorageError(f"unsupported checkpoint version {manifest.get('version')}")
    store = LSMStore(config)
    for name, expected in zip(manifest["tables"], manifest["entries"]):
        entries = _read_table(directory / name)
        if len(entries) != expected:
            raise StorageError(f"checkpoint table {name} has {len(entries)} entries, expected {expected}")
        store.sstables.append(SSTable(entries, store.config.bloom_fp_rate))
    return store


def checkpoint_graph_store(gstore: GraphStore, directory: Union[str, Path]) -> Path:
    """Checkpoint a server's graph store: KV data, vertex index, layout."""
    directory = Path(directory)
    checkpoint_store(gstore.kv, directory)
    payload = {
        "layout": gstore.edge_layout,
        "index": {str(vid): ns for vid, ns in gstore._ns_of.items()},
    }
    (directory / "vertex_index.json").write_text(json.dumps(payload))
    return directory


def restore_graph_store(
    directory: Union[str, Path], config: Union[LSMConfig, None] = None
) -> GraphStore:
    """Rebuild a server's :class:`GraphStore` from a checkpoint."""
    directory = Path(directory)
    index_path = directory / "vertex_index.json"
    if not index_path.exists():
        raise StorageError(f"no vertex index in {directory}")
    payload = json.loads(index_path.read_text())
    gstore = GraphStore(config, edge_layout=payload.get("layout", "grouped"))
    gstore.kv = restore_store(directory, config or gstore.kv.config)
    for vid_str, ns in payload["index"].items():
        gstore._index_vertex(int(vid_str), ns)
    return gstore
