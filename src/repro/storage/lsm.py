"""Log-structured merge (LSM) key-value store with I/O cost accounting.

This is the per-server storage engine standing in for RocksDB (paper §VI):
a memtable absorbs writes, immutable SSTables hold flushed data, point reads
consult bloom filters newest-table-first, range scans merge all overlapping
runs, and a full compaction keeps the table count bounded.

Every read operation returns ``(result, IOCost)``; the simulated runtime
turns the cost into virtual disk time. The store itself is real — values put
in come back out — so the traversal engines' correctness is tested against
actual data movement, not a mock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import StorageError
from repro.storage.blockcache import BlockCache
from repro.storage.costmodel import DiskCostModel, GPFS, IOCost
from repro.storage.encoding import prefix_end
from repro.storage.memtable import Memtable, TOMBSTONE
from repro.storage.sstable import SSTable, merge_runs


@dataclass
class LSMStats:
    """Operation counters for one store instance."""

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    scans: int = 0
    flushes: int = 0
    compactions: int = 0
    bloom_false_positives: int = 0
    entries_scanned: int = 0
    #: entries dropped by a predicate-aware scan before surfacing (pushdown)
    entries_filtered: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class LSMConfig:
    """Tuning knobs for :class:`LSMStore`."""

    memtable_flush_bytes: int = 4 * 1024 * 1024
    max_sstables: int = 8
    bloom_fp_rate: float = 0.01
    block_cache_blocks: int = 0  # cold by default, per the paper's evaluation
    cost_model: DiskCostModel = field(default_factory=lambda: GPFS)


class LSMStore:
    """An embedded ordered KV store: put/get/delete/scan + bulk load."""

    def __init__(self, config: Optional[LSMConfig] = None):
        self.config = config or LSMConfig()
        self.memtable = Memtable()
        self.sstables: list[SSTable] = []  # newest first
        self.cache = BlockCache(self.config.block_cache_blocks)
        self.stats = LSMStats()

    # -- internal cost helpers ------------------------------------------

    def _charge_extent(self, table: SSTable, start: int, end: int) -> IOCost:
        """Cost of reading bytes [start, end) from ``table``."""
        model = self.config.cost_model
        cost = IOCost(bytes=end - start)
        first_block = start // model.block_size
        last_block = max(first_block, (end - 1) // model.block_size) if end > start else first_block
        any_miss = False
        for block_no in range(first_block, last_block + 1):
            if self.cache.access(table.table_id, block_no):
                cost.cache_hits += 1
            else:
                cost.blocks += 1
                any_miss = True
        if any_miss:
            cost.seeks += 1
        return cost

    # -- writes -----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise StorageError("keys and values must be bytes")
        self.stats.puts += 1
        self.memtable.put(key, value)
        if self.memtable.size_bytes >= self.config.memtable_flush_bytes:
            self.flush()

    def delete(self, key: bytes) -> None:
        self.stats.deletes += 1
        self.memtable.delete(key)
        if self.memtable.size_bytes >= self.config.memtable_flush_bytes:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new SSTable (newest-first position)."""
        if len(self.memtable) == 0:
            return
        table = SSTable(self.memtable.items_sorted(), self.config.bloom_fp_rate)
        self.sstables.insert(0, table)
        self.memtable.clear()
        self.stats.flushes += 1
        if len(self.sstables) > self.config.max_sstables:
            self.compact()

    def bulk_load(self, items: Iterable[tuple[bytes, bytes]]) -> None:
        """Build one SSTable directly from pre-sorted unique items.

        The fast path for loading a partitioned graph; equivalent to
        RocksDB's SST ingestion.
        """
        entries = list(items)
        if any(not isinstance(k, bytes) or not isinstance(v, bytes) for k, v in entries):
            raise StorageError("bulk_load requires bytes keys and values")
        table = SSTable(entries, self.config.bloom_fp_rate)
        self.sstables.insert(0, table)

    def compact(self) -> None:
        """Full compaction: merge every SSTable into one, dropping tombstones."""
        if not self.sstables:
            return
        runs = [list(zip(t.keys, t.values)) for t in self.sstables]
        merged = merge_runs(runs, drop_tombstones=True)
        for table in self.sstables:
            self.cache.invalidate_table(table.table_id)
        self.sstables = [SSTable(merged, self.config.bloom_fp_rate)] if merged else []
        self.stats.compactions += 1

    # -- reads ------------------------------------------------------------

    def get(self, key: bytes) -> tuple[Optional[bytes], IOCost]:
        """Point lookup. Returns (value or None, cost)."""
        self.stats.gets += 1
        cost = IOCost()
        hit = self.memtable.get(key)
        if hit is not None:
            return (None if hit is TOMBSTONE else hit), cost  # in-memory, free
        for table in self.sstables:
            if not table.may_contain(key):
                continue
            idx = table.find(key)
            if idx is None:
                # Bloom false positive: we paid a probe into the table.
                self.stats.bloom_false_positives += 1
                start, _ = table.entry_extent(0) if len(table) else (0, 0)
                cost += self._charge_extent(table, start, start + 1)
                continue
            start, end = table.entry_extent(idx)
            cost += self._charge_extent(table, start, end)
            value = table.values[idx]
            return (None if value is TOMBSTONE else value), cost  # type: ignore[return-value]
        return None, cost

    def scan(self, start: bytes, end: bytes) -> tuple[list[tuple[bytes, bytes]], IOCost]:
        """Range scan [start, end): merged view across memtable and tables.

        Cost: per overlapping SSTable, one seek plus the sequential blocks
        the in-range extent spans (cache-aware). The memtable is free.
        """
        self.stats.scans += 1
        cost = IOCost()
        runs: list[list[tuple[bytes, object]]] = [list(self.memtable.scan(start, end))]
        for table in self.sstables:
            if not table.overlaps(start, end):
                continue
            lo, hi = table.range_indices(start, end)
            if lo == hi:
                continue
            byte_start = table.offsets[lo]
            byte_end = table.offsets[hi]
            cost += self._charge_extent(table, byte_start, byte_end)
            runs.append(list(zip(table.keys[lo:hi], table.values[lo:hi])))
        merged = merge_runs(runs, drop_tombstones=True)
        self.stats.entries_scanned += len(merged)
        return [(k, v) for k, v in merged], cost  # type: ignore[misc]

    def scan_prefix(self, prefix: bytes) -> tuple[list[tuple[bytes, bytes]], IOCost]:
        return self.scan(prefix, prefix_end(prefix))

    def scan_filtered(
        self, start: bytes, end: bytes, accept
    ) -> tuple[list[tuple[bytes, bytes]], IOCost]:
        """Predicate-aware range scan: like :meth:`scan`, but entries failing
        ``accept(key, value)`` never surface to the caller.

        The I/O cost is identical to the unfiltered scan — the same blocks
        are read — so pushing a predicate down buys fewer *surfaced records*
        (tracked by ``entries_filtered``), not fewer bytes. That mirrors the
        real-storage contract: filtering happens inside the scan operator,
        below the engine.
        """
        pairs, cost = self.scan(start, end)
        kept = [(k, v) for k, v in pairs if accept(k, v)]
        self.stats.entries_filtered += len(pairs) - len(kept)
        return kept, cost

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        """Number of live keys (exact; walks the merged view)."""
        items, _ = self.scan(b"", b"\xff" * 64)
        return len(items)

    @property
    def table_count(self) -> int:
        return len(self.sstables)

    @property
    def approximate_bytes(self) -> int:
        return self.memtable.size_bytes + sum(t.size_bytes for t in self.sstables)

    def metrics_snapshot(self) -> dict[str, int]:
        """Flat counter map for the observability registry.

        Deliberately excludes SSTable ids: those come from a process-global
        counter, so including them would break byte-identical snapshots
        across cluster builds within one process.
        """
        out = {f"lsm.{k}": v for k, v in self.stats.as_dict().items()}
        for k, v in self.cache.stats_dict().items():
            out[f"blockcache.{k}"] = v
        out["bloom.probes"] = sum(t.bloom.probes for t in self.sstables)
        out["bloom.negatives"] = sum(t.bloom.negatives for t in self.sstables)
        out["lsm.table_count"] = len(self.sstables)
        return out
