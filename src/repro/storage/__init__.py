"""Storage substrate: an LSM key-value store and the graph-on-KV layout.

This package stands in for the paper's per-server RocksDB instances plus its
GraphMeta layout (attributes and same-label edges stored as adjacent KV
pairs). All reads report an :class:`~repro.storage.costmodel.IOCost` that the
simulated runtime converts to virtual disk time.
"""

from repro.storage.blockcache import BlockCache
from repro.storage.bloom import BloomFilter
from repro.storage.columnar import AdjacencyBlock, decode_block, encode_block
from repro.storage.costmodel import GPFS, LOCAL_DISK, DiskCostModel, IOCost
from repro.storage.layout import EDGE_LAYOUTS, GraphStore, validate_edge_layout
from repro.storage.lsm import LSMConfig, LSMStats, LSMStore
from repro.storage.memtable import Memtable, TOMBSTONE
from repro.storage.persist import (
    checkpoint_graph_store,
    checkpoint_store,
    restore_graph_store,
    restore_store,
)
from repro.storage.sstable import SSTable, merge_runs

__all__ = [
    "AdjacencyBlock",
    "BlockCache",
    "BloomFilter",
    "EDGE_LAYOUTS",
    "decode_block",
    "encode_block",
    "validate_edge_layout",
    "DiskCostModel",
    "GPFS",
    "LOCAL_DISK",
    "IOCost",
    "GraphStore",
    "LSMConfig",
    "LSMStats",
    "LSMStore",
    "Memtable",
    "TOMBSTONE",
    "SSTable",
    "merge_runs",
    "checkpoint_graph_store",
    "checkpoint_store",
    "restore_graph_store",
    "restore_store",
]
