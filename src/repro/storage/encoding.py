"""Key and value codecs for the graph-on-KV layout.

Keys are designed so that everything the traversal engine scans together is
adjacent in key order (paper §VI): within a vertex, its attribute pairs come
first, then its edge pairs grouped by edge label. Different vertex *types*
live in separate namespaces.

Key layout (all fields fixed width except names, which are length-prefixed)::

    <ns> 0x00 'V' <vid:8 BE> 'A' <prop name>              -> property value
    <ns> 0x00 'V' <vid:8 BE> 'E' <label> 0x00 <seq:8 BE>  -> edge record

Values use a compact self-describing binary codec (ints, floats, strs,
bytes, bools, None) so the cost model sees realistic byte sizes.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator

from repro.errors import StorageError

_SEP = b"\x00"
_VPREFIX = b"V"
_ATTR = b"A"
#: columnar adjacency blocks: one value per (vertex, label). 'A' < 'B' < 'E'
#: keeps the block region inside the vertex prefix (so whole-vertex scans,
#: deletes, and migration exports cover it) but disjoint from both the
#: attribute and the entry-per-edge regions.
_BLOCK = b"B"
_EDGE = b"E"

_Q = struct.Struct(">Q")
_D = struct.Struct(">d")
_q = struct.Struct(">q")

# -- value codec -----------------------------------------------------------

_T_NONE = b"\x00"
_T_INT = b"\x01"
_T_FLOAT = b"\x02"
_T_STR = b"\x03"
_T_BYTES = b"\x04"
_T_BOOL = b"\x05"


def pack_value(value: Any) -> bytes:
    """Serialize one scalar property value."""
    if value is None:
        return _T_NONE
    if isinstance(value, bool):  # before int: bool is an int subclass
        return _T_BOOL + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        return _T_INT + _q.pack(value)
    if isinstance(value, float):
        return _T_FLOAT + _D.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return _T_STR + _Q.pack(len(raw)) + raw
    if isinstance(value, bytes):
        return _T_BYTES + _Q.pack(len(value)) + value
    raise StorageError(f"unsupported property type: {type(value).__name__}")


def unpack_value(buf: bytes, offset: int = 0) -> tuple[Any, int]:
    """Deserialize one value; returns (value, next offset)."""
    tag = buf[offset : offset + 1]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_BOOL:
        return buf[offset] != 0, offset + 1
    if tag == _T_INT:
        return _q.unpack_from(buf, offset)[0], offset + 8
    if tag == _T_FLOAT:
        return _D.unpack_from(buf, offset)[0], offset + 8
    if tag in (_T_STR, _T_BYTES):
        (n,) = _Q.unpack_from(buf, offset)
        offset += 8
        raw = buf[offset : offset + n]
        offset += n
        return (raw.decode("utf-8") if tag == _T_STR else bytes(raw)), offset
    raise StorageError(f"corrupt value tag: {tag!r}")


def pack_props(props: dict[str, Any]) -> bytes:
    """Serialize a property dict (sorted keys → deterministic bytes)."""
    parts = [_Q.pack(len(props))]
    for key in sorted(props):
        raw_key = key.encode("utf-8")
        parts.append(_Q.pack(len(raw_key)))
        parts.append(raw_key)
        parts.append(pack_value(props[key]))
    return b"".join(parts)


def unpack_props(buf: bytes, offset: int = 0) -> tuple[dict[str, Any], int]:
    (n,) = _Q.unpack_from(buf, offset)
    offset += 8
    props: dict[str, Any] = {}
    for _ in range(n):
        (klen,) = _Q.unpack_from(buf, offset)
        offset += 8
        key = buf[offset : offset + klen].decode("utf-8")
        offset += klen
        value, offset = unpack_value(buf, offset)
        props[key] = value
    return props, offset


def pack_edge_record(dst: int, props: dict[str, Any]) -> bytes:
    """Serialize one edge: destination vertex id + edge properties."""
    return _Q.pack(dst) + pack_props(props)


def unpack_edge_record(buf: bytes) -> tuple[int, dict[str, Any]]:
    (dst,) = _Q.unpack_from(buf, 0)
    props, _ = unpack_props(buf, 8)
    return dst, props


# -- key codec ---------------------------------------------------------------


def _ns_bytes(namespace: str) -> bytes:
    raw = namespace.encode("utf-8")
    if _SEP in raw:
        raise StorageError(f"namespace may not contain NUL: {namespace!r}")
    return raw


def vertex_prefix(namespace: str, vid: int) -> bytes:
    """Prefix covering everything stored for one vertex."""
    return _ns_bytes(namespace) + _SEP + _VPREFIX + _Q.pack(vid)


def attr_key(namespace: str, vid: int, prop: str) -> bytes:
    return vertex_prefix(namespace, vid) + _ATTR + prop.encode("utf-8")


def attrs_prefix(namespace: str, vid: int) -> bytes:
    """Prefix covering all attribute pairs of one vertex."""
    return vertex_prefix(namespace, vid) + _ATTR


def edge_key(namespace: str, vid: int, label: str, seq: int) -> bytes:
    raw_label = label.encode("utf-8")
    if _SEP in raw_label:
        raise StorageError(f"edge label may not contain NUL: {label!r}")
    return vertex_prefix(namespace, vid) + _EDGE + raw_label + _SEP + _Q.pack(seq)


def edge_key_interleaved(namespace: str, vid: int, label: str, seq: int) -> bytes:
    """Insertion-order edge key (seq before label): edges of different labels
    interleave, as in generic column layouts that do not group by type. Used
    by the storage-layout ablation (paper §IV-B argues grouping by type wins).
    """
    raw_label = label.encode("utf-8")
    if _SEP in raw_label:
        raise StorageError(f"edge label may not contain NUL: {label!r}")
    return vertex_prefix(namespace, vid) + _EDGE + _Q.pack(seq) + _SEP + raw_label


def edges_prefix(namespace: str, vid: int, label: str) -> bytes:
    """Prefix covering all edges of one label out of one vertex.

    Edges of the same label are therefore contiguous in key order — the
    storage optimization the paper calls out for sequential edge iteration.
    """
    raw_label = label.encode("utf-8")
    if _SEP in raw_label:
        raise StorageError(f"edge label may not contain NUL: {label!r}")
    return vertex_prefix(namespace, vid) + _EDGE + raw_label + _SEP


def edge_block_key(namespace: str, vid: int, label: str) -> bytes:
    """Key of the columnar adjacency block for one (vertex, label)."""
    raw_label = label.encode("utf-8")
    if _SEP in raw_label:
        raise StorageError(f"edge label may not contain NUL: {label!r}")
    return vertex_prefix(namespace, vid) + _BLOCK + raw_label


def edge_blocks_prefix(namespace: str, vid: int) -> bytes:
    """Prefix covering every columnar adjacency block of one vertex."""
    return vertex_prefix(namespace, vid) + _BLOCK


def parse_edge_block_key(key: bytes) -> tuple[str, int, str]:
    """Inverse of :func:`edge_block_key`: (namespace, vid, label)."""
    ns, rest = key.split(_SEP, 1)
    if rest[:1] != _VPREFIX or rest[9:10] != _BLOCK:
        raise StorageError(f"not an adjacency-block key: {key!r}")
    (vid,) = _Q.unpack_from(rest, 1)
    return ns.decode("utf-8"), vid, rest[10:].decode("utf-8")


def vertex_key_tag(key: bytes) -> tuple[str, int, bytes]:
    """Classify any vertex-region key: (namespace, vid, region tag byte).

    The tag is one of ``b"A"`` (attribute), ``b"B"`` (columnar block), or
    ``b"E"`` (entry-per-edge record). Used to detect legacy entry-per-edge
    data arriving at (or restored into) a columnar store.
    """
    ns, rest = key.split(_SEP, 1)
    if rest[:1] != _VPREFIX:
        raise StorageError(f"not a vertex key: {key!r}")
    (vid,) = _Q.unpack_from(rest, 1)
    return ns.decode("utf-8"), vid, rest[9:10]


def all_edges_prefix(namespace: str, vid: int) -> bytes:
    """Prefix covering every edge pair of one vertex, all labels."""
    return vertex_prefix(namespace, vid) + _EDGE


def prefix_end(prefix: bytes) -> bytes:
    """Smallest byte string greater than every key with ``prefix``.

    Standard trick: increment the last non-0xFF byte and truncate.
    """
    buf = bytearray(prefix)
    while buf:
        if buf[-1] != 0xFF:
            buf[-1] += 1
            return bytes(buf)
        buf.pop()
    return b"\xff" * 16  # prefix was all 0xFF; practically unreachable


def parse_attr_key(key: bytes) -> tuple[str, int, str]:
    """Inverse of :func:`attr_key`: (namespace, vid, prop name)."""
    ns, rest = key.split(_SEP, 1)
    if rest[:1] != _VPREFIX:
        raise StorageError(f"not a vertex key: {key!r}")
    (vid,) = _Q.unpack_from(rest, 1)
    if rest[9:10] != _ATTR:
        raise StorageError(f"not an attribute key: {key!r}")
    return ns.decode("utf-8"), vid, rest[10:].decode("utf-8")


def parse_edge_key(key: bytes) -> tuple[str, int, str, int]:
    """Inverse of :func:`edge_key`: (namespace, vid, label, seq)."""
    ns, rest = key.split(_SEP, 1)
    if rest[:1] != _VPREFIX or rest[9:10] != _EDGE:
        raise StorageError(f"not an edge key: {key!r}")
    (vid,) = _Q.unpack_from(rest, 1)
    label_raw, tail = rest[10:].split(_SEP, 1)
    (seq,) = _Q.unpack_from(tail, 0)
    return ns.decode("utf-8"), vid, label_raw.decode("utf-8"), seq


def iter_props_pairs(props: dict[str, Any]) -> Iterator[tuple[str, bytes]]:
    """(prop name, packed value) pairs in deterministic order."""
    for key in sorted(props):
        yield key, pack_value(props[key])
