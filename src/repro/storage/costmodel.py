"""Disk I/O cost accounting.

The storage layer is *functionally* real (it stores and returns actual
bytes), but it runs on a simulated disk: every operation reports an
:class:`IOCost` (seeks, blocks, bytes, cache hits) which the simulated
runtime converts into virtual time via a :class:`DiskCostModel`.

The model captures what the paper's storage design relies on: edges of one
type are stored contiguously, so scanning them is one seek plus sequential
block reads, which "could obtain the best performance on block-based storage
devices" (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOCost:
    """Additive I/O cost of one or more storage operations.

    ``seeks`` is fractional: batch-sorted access patterns amortize head
    movement, which engines express by scaling the seek count (see
    ``EngineOptions.batch_seek_factor``).
    """

    seeks: float = 0
    blocks: int = 0
    bytes: int = 0
    cache_hits: int = 0

    def __add__(self, other: "IOCost") -> "IOCost":
        return IOCost(
            seeks=self.seeks + other.seeks,
            blocks=self.blocks + other.blocks,
            bytes=self.bytes + other.bytes,
            cache_hits=self.cache_hits + other.cache_hits,
        )

    def __iadd__(self, other: "IOCost") -> "IOCost":
        self.seeks += other.seeks
        self.blocks += other.blocks
        self.bytes += other.bytes
        self.cache_hits += other.cache_hits
        return self

    @property
    def is_zero(self) -> bool:
        return self.seeks == 0 and self.blocks == 0 and self.cache_hits == 0


@dataclass(frozen=True)
class DiskCostModel:
    """Converts :class:`IOCost` into virtual seconds.

    Defaults approximate the paper's environment: RocksDB files on GPFS
    (parallel filesystem — higher per-request latency than a local disk, the
    paper measured local disks ~10% faster). A "seek" stands for any
    first-byte latency (metadata + head movement / network hop to the FS),
    a "block" for streaming one 4 KiB block.
    """

    seek_time: float = 2.0e-3  # seconds per random access
    block_time: float = 5.0e-5  # seconds per sequential 4 KiB block
    block_size: int = 4096  # bytes
    #: per-block cost of a page-cache-resident read: no device access, but
    #: the storage engine still locates and decodes the block (RocksDB-style
    #: read amplification). Calibrated so warm visits land in the tens of
    #: microseconds, the regime the paper's throughput numbers imply.
    cache_hit_time: float = 25e-6

    def time(self, cost: IOCost) -> float:
        """Virtual seconds this cost takes on the modelled device."""
        return (
            cost.seeks * self.seek_time
            + cost.blocks * self.block_time
            + cost.cache_hits * self.cache_hit_time
        )

    def blocks_for(self, nbytes: int) -> int:
        """Number of blocks a contiguous payload of ``nbytes`` spans."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.block_size)  # ceil division


#: A model for local hard disks (paper: ~10% faster than GPFS end-to-end).
LOCAL_DISK = DiskCostModel(seek_time=1.6e-3, block_time=4.0e-5, cache_hit_time=20e-6)

#: A model for a parallel filesystem (GPFS); the evaluation default.
GPFS = DiskCostModel(seek_time=2.0e-3, block_time=5.0e-5)
