"""Immutable sorted string tables (SSTables).

An SSTable is a frozen, key-ordered run of entries with a bloom filter and a
byte-offset index. It is "on disk" for accounting purposes: the LSM store
charges seeks and block reads for every access, using each entry's byte
extent to determine which blocks it spans — exactly the property the paper's
layout exploits (same-label edges adjacent → sequential block reads).
"""

from __future__ import annotations

import bisect
import itertools
from typing import Iterable, Iterator, Optional

from repro.errors import StorageError
from repro.storage.bloom import BloomFilter
from repro.storage.memtable import TOMBSTONE

_table_ids = itertools.count(1)


class SSTable:
    """One immutable sorted run.

    ``entries`` must be sorted by key and may contain TOMBSTONE values (kept
    so newer tables can mask older ones; dropped by full compaction).
    """

    __slots__ = ("table_id", "keys", "values", "offsets", "bloom", "size_bytes")

    def __init__(self, entries: Iterable[tuple[bytes, object]], fp_rate: float = 0.01):
        keys: list[bytes] = []
        values: list[object] = []
        offsets: list[int] = [0]
        pos = 0
        prev: Optional[bytes] = None
        for key, value in entries:
            if prev is not None and key <= prev:
                raise StorageError("SSTable entries must be strictly sorted")
            prev = key
            keys.append(key)
            values.append(value)
            vlen = 0 if value is TOMBSTONE else len(value)  # type: ignore[arg-type]
            pos += len(key) + vlen + 16  # 16 bytes of per-entry framing
            offsets.append(pos)
        self.table_id = next(_table_ids)
        self.keys = keys
        self.values = values
        self.offsets = offsets
        self.size_bytes = pos
        self.bloom = BloomFilter(max(1, len(keys)), fp_rate)
        self.bloom.update(keys)

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def min_key(self) -> Optional[bytes]:
        return self.keys[0] if self.keys else None

    @property
    def max_key(self) -> Optional[bytes]:
        return self.keys[-1] if self.keys else None

    def may_contain(self, key: bytes) -> bool:
        """Bloom + key-range check; False means definitely absent."""
        if not self.keys or key < self.keys[0] or key > self.keys[-1]:
            return False
        return key in self.bloom

    def find(self, key: bytes) -> Optional[int]:
        """Index of ``key`` or None."""
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return i
        return None

    def entry_extent(self, index: int) -> tuple[int, int]:
        """Byte range [start, end) of entry ``index`` inside the table file."""
        return self.offsets[index], self.offsets[index + 1]

    def range_indices(self, start: bytes, end: bytes) -> tuple[int, int]:
        """Entry index range [lo, hi) with start <= key < end."""
        lo = bisect.bisect_left(self.keys, start)
        hi = bisect.bisect_left(self.keys, end)
        return lo, hi

    def scan(self, start: bytes, end: bytes) -> Iterator[tuple[bytes, object]]:
        lo, hi = self.range_indices(start, end)
        for i in range(lo, hi):
            yield self.keys[i], self.values[i]

    def overlaps(self, start: bytes, end: bytes) -> bool:
        if not self.keys:
            return False
        return self.keys[0] < end and start <= self.keys[-1]


def merge_runs(
    runs: list[list[tuple[bytes, object]]], drop_tombstones: bool
) -> list[tuple[bytes, object]]:
    """Merge sorted runs, newest first; newer entries win on key ties.

    With ``drop_tombstones`` the merged output omits deleted keys entirely
    (safe only for a *full* merge where no older run survives).
    """
    import heapq

    heap: list[tuple[bytes, int, int]] = []  # (key, run priority, pos)
    for rank, run in enumerate(runs):
        if run:
            heapq.heappush(heap, (run[0][0], rank, 0))
    out: list[tuple[bytes, object]] = []
    last_key: Optional[bytes] = None
    while heap:
        key, rank, pos = heapq.heappop(heap)
        value = runs[rank][pos][1]
        if pos + 1 < len(runs[rank]):
            heapq.heappush(heap, (runs[rank][pos + 1][0], rank, pos + 1))
        if key == last_key:
            continue  # an entry from a newer run already won
        last_key = key
        if drop_tombstones and value is TOMBSTONE:
            continue
        out.append((key, value))
    return out
