"""LRU block cache shared by all SSTables of one server's store.

Blocks are identified by ``(table_id, block_no)``. The cache does not hold
real bytes — the SSTables are already in process memory — it exists to decide
whether an access *would* have hit the OS page cache, which is what the cost
model charges for. The paper's evaluations run from a cold start "to force
disk access"; :meth:`clear` provides exactly that.
"""

from __future__ import annotations

from collections import OrderedDict


class BlockCache:
    """Fixed-capacity LRU set of block ids.

    ``capacity_blocks=0`` disables caching (every access is a miss), which is
    how cold-start experiments keep revisits honest.
    """

    def __init__(self, capacity_blocks: int = 0):
        if capacity_blocks < 0:
            raise ValueError("capacity_blocks must be >= 0")
        self.capacity = capacity_blocks
        self._blocks: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def access(self, table_id: int, block_no: int) -> bool:
        """Record an access; True if it was a cache hit."""
        if self.capacity == 0:
            self.misses += 1
            return False
        key = (table_id, block_no)
        if key in self._blocks:
            self._blocks.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._blocks[key] = None
        if len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)
            self.evictions += 1
        return False

    def invalidate_table(self, table_id: int) -> None:
        """Drop all blocks of one table (after compaction retires it)."""
        stale = [k for k in self._blocks if k[0] == table_id]
        for k in stale:
            del self._blocks[k]

    def clear(self) -> None:
        """Cold start: empty the cache but keep hit/miss counters."""
        self._blocks.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats_dict(self) -> dict[str, int]:
        """Counter snapshot for the observability registry."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resident_blocks": len(self._blocks),
        }
