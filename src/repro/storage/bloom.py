"""Bloom filter over byte keys.

Each SSTable carries one so that point reads skip tables that cannot contain
the key — the same role RocksDB's per-file bloom filters play. The filter is
a plain Python ``bytearray`` bitset with double hashing (Kirsch–Mitzenmacher),
which is plenty fast at the scales the simulation runs at.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable


def _hash_pair(key: bytes) -> tuple[int, int]:
    digest = hashlib.blake2b(key, digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1  # odd => full period
    return h1, h2


class BloomFilter:
    """Fixed-size bloom filter sized for ``expected_items`` at ``fp_rate``."""

    __slots__ = ("nbits", "nhashes", "_bits", "count", "probes", "negatives")

    def __init__(self, expected_items: int, fp_rate: float = 0.01):
        if expected_items < 1:
            expected_items = 1
        if not (0.0 < fp_rate < 1.0):
            raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
        ln2 = math.log(2.0)
        nbits = max(8, int(-expected_items * math.log(fp_rate) / (ln2 * ln2)))
        self.nbits = nbits
        self.nhashes = max(1, round(nbits / expected_items * ln2))
        self._bits = bytearray((nbits + 7) // 8)
        self.count = 0
        #: membership probes answered, and how many said "definitely absent"
        #: (the I/O the filter saved; probes - negatives - true hits = FPs,
        #: which the LSM store counts when the table probe comes up empty).
        self.probes = 0
        self.negatives = 0

    def add(self, key: bytes) -> None:
        h1, h2 = _hash_pair(key)
        for i in range(self.nhashes):
            bit = (h1 + i * h2) % self.nbits
            self._bits[bit >> 3] |= 1 << (bit & 7)
        self.count += 1

    def update(self, keys: Iterable[bytes]) -> None:
        for key in keys:
            self.add(key)

    def __contains__(self, key: bytes) -> bool:
        self.probes += 1
        h1, h2 = _hash_pair(key)
        for i in range(self.nhashes):
            bit = (h1 + i * h2) % self.nbits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                self.negatives += 1
                return False
        return True

    @property
    def size_bytes(self) -> int:
        return len(self._bits)
