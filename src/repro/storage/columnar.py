"""Compressed columnar adjacency blocks: delta + varint neighbor columns.

The entry-per-edge layouts pay one KV pair — key bytes, record framing,
per-entry decode — for every edge. The columnar layout stores one value per
``(vertex, edge label)`` holding *all* of that label's neighbors as a single
delta-encoded varint column (swh-graph compresses billion-edge graphs to a
few bits per edge with exactly this trick), so a whole adjacency list is one
point lookup plus one decode.

Block wire format (:func:`encode_block`, the id column)::

    0xC7                      magic byte
    varint(count)             number of neighbor ids
    zigzag-varint * count     first id, then deltas from the previous id
    crc32:4 BE                over everything before it

Deltas are *zigzag*-encoded, so the codec round-trips any id sequence
exactly — unsorted and duplicate-bearing inputs included (a duplicate is a
zero delta, an inversion a negative one). Sorted lists, the layout's case,
get the small-positive-delta packing the compression relies on.

:class:`AdjacencyBlock` wraps the id column together with a parallel edge
property column (elided entirely in the overwhelmingly common all-empty
case) under the same framing and CRC.

Every decode failure raises :class:`~repro.errors.CorruptAdjacencyBlock` —
a truncated varint, a count overrunning the payload, trailing bytes, a
bit-flip caught by the CRC. Never silent garbage.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import CorruptAdjacencyBlock
from repro.storage.encoding import pack_props, unpack_props

#: magic byte opening every id-column block
BLOCK_MAGIC = 0xC7
#: magic byte opening every AdjacencyBlock (ids + props columns)
ADJ_MAGIC = 0xC8

_CRC = struct.Struct(">I")


# -- varint / zigzag primitives ----------------------------------------------


def zigzag_encode(n: int) -> int:
    """Map signed → unsigned so small-magnitude deltas stay small."""
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def zigzag_decode(u: int) -> int:
    return (u >> 1) if (u & 1) == 0 else -((u + 1) >> 1)


def encode_varints(values: Sequence[int], out: bytearray) -> None:
    """Append LEB128 varints for non-negative ``values`` to ``out``."""
    append = out.append
    for v in values:
        while v >= 0x80:
            append((v & 0x7F) | 0x80)
            v >>= 7
        append(v)


def decode_varints(buf: bytes, offset: int, count: int) -> tuple[list[int], int]:
    """Read ``count`` varints starting at ``offset``; (values, next offset).

    Raises :class:`~repro.errors.CorruptAdjacencyBlock` when a varint runs
    past the end of ``buf``.
    """
    out: list[int] = []
    append = out.append
    end = len(buf)
    for _ in range(count):
        if offset >= end:
            raise CorruptAdjacencyBlock(
                f"truncated varint: column needs {count} values, "
                f"buffer ended after {len(out)}"
            )
        b = buf[offset]
        offset += 1
        if b < 0x80:  # single-byte fast path: the common small delta
            append(b)
            continue
        result = b & 0x7F
        shift = 7
        while True:
            if offset >= end:
                raise CorruptAdjacencyBlock(
                    "truncated varint: continuation bit set at end of buffer"
                )
            if shift > 70:
                raise CorruptAdjacencyBlock("varint wider than 10 bytes")
            b = buf[offset]
            offset += 1
            result |= (b & 0x7F) << shift
            if b < 0x80:
                break
            shift += 7
        append(result)
    return out, offset


def _decode_one_varint(buf: bytes, offset: int) -> tuple[int, int]:
    values, offset = decode_varints(buf, offset, 1)
    return values[0], offset


# -- id-column codec ----------------------------------------------------------


def encode_block(neighbors: Sequence[int]) -> bytes:
    """Encode a neighbor-id list into one delta/varint column with CRC.

    Round-trips *exactly*: :func:`decode_block` returns the ids in the
    order given, duplicates and inversions included.
    """
    out = bytearray([BLOCK_MAGIC])
    encode_varints((len(neighbors),), out)
    deltas = []
    prev = 0
    for vid in neighbors:
        deltas.append(zigzag_encode(vid - prev))
        prev = vid
    encode_varints(deltas, out)
    out += _CRC.pack(zlib.crc32(out))
    return bytes(out)


def decode_block(buf: bytes) -> list[int]:
    """Inverse of :func:`encode_block`.

    Raises :class:`~repro.errors.CorruptAdjacencyBlock` on any framing or
    integrity violation.
    """
    if len(buf) < 6:  # magic + count + crc is the minimum (empty block)
        raise CorruptAdjacencyBlock(
            f"block of {len(buf)} bytes is shorter than the minimal frame"
        )
    if buf[0] != BLOCK_MAGIC:
        raise CorruptAdjacencyBlock(
            f"bad magic byte {buf[0]:#04x}, expected {BLOCK_MAGIC:#04x}"
        )
    body, crc_bytes = buf[:-4], buf[-4:]
    if zlib.crc32(body) != _CRC.unpack(crc_bytes)[0]:
        raise CorruptAdjacencyBlock("block CRC32 mismatch")
    count, offset = _decode_one_varint(body, 1)
    deltas, offset = decode_varints(body, offset, count)
    if offset != len(body):
        raise CorruptAdjacencyBlock(
            f"{len(body) - offset} trailing bytes after {count} ids"
        )
    out: list[int] = []
    append = out.append
    prev = 0
    for d in deltas:
        prev += zigzag_decode(d)
        append(prev)
    return out


def block_entry_count(buf: bytes) -> int:
    """Edge count of an encoded block without decoding the columns.

    Accepts either frame (:func:`encode_block` or
    :meth:`AdjacencyBlock.encode`); used by the storage layer's bytes/edge
    accounting when blocks move wholesale (migration import, deletes).
    """
    if not buf or buf[0] not in (BLOCK_MAGIC, ADJ_MAGIC):
        raise CorruptAdjacencyBlock("not an adjacency block")
    count, _ = _decode_one_varint(buf, 1)
    return count


# -- full adjacency blocks (ids + edge-property column) -----------------------


@dataclass(frozen=True)
class AdjacencyBlock:
    """One ``(vertex, edge label)`` adjacency block: parallel columns of
    neighbor ids and edge-property dicts."""

    vertex: int
    label: str
    targets: tuple[int, ...]
    props: tuple[dict[str, Any], ...] = field(default=())

    def __post_init__(self):
        if self.props and len(self.props) != len(self.targets):
            raise CorruptAdjacencyBlock(
                f"props column has {len(self.props)} entries for "
                f"{len(self.targets)} targets"
            )

    @classmethod
    def from_edges(
        cls, vertex: int, label: str, edges: Sequence[tuple[int, dict[str, Any]]]
    ) -> "AdjacencyBlock":
        """Build a block from ``(dst, props)`` pairs, sorted by destination
        id (stable, so same-destination parallel edges keep their relative
        order). Sorting is what makes the deltas small."""
        ordered = sorted(edges, key=lambda e: e[0])
        targets = tuple(dst for dst, _ in ordered)
        if any(p for _, p in ordered):
            return cls(vertex, label, targets, tuple(dict(p) for _, p in ordered))
        return cls(vertex, label, targets)

    def pairs(self) -> list[tuple[int, dict[str, Any]]]:
        """Materialize ``(dst, props)`` pairs in stored order."""
        if self.props:
            return [(dst, dict(p)) for dst, p in zip(self.targets, self.props)]
        return [(dst, {}) for dst in self.targets]

    def encode(self) -> bytes:
        """Wire format: magic, id column, then a props column that is a
        single 0 byte when every edge has empty properties (the dominant
        case — the whole column costs one byte) or 1 followed by per-edge
        length-prefixed :func:`~repro.storage.encoding.pack_props` blobs."""
        out = bytearray([ADJ_MAGIC])
        encode_varints((len(self.targets),), out)
        deltas = []
        prev = 0
        for vid in self.targets:
            deltas.append(zigzag_encode(vid - prev))
            prev = vid
        encode_varints(deltas, out)
        if self.props:
            out.append(1)
            for p in self.props:
                blob = pack_props(p)
                encode_varints((len(blob),), out)
                out += blob
        else:
            out.append(0)
        out += _CRC.pack(zlib.crc32(out))
        return bytes(out)

    @classmethod
    def decode(cls, vertex: int, label: str, buf: bytes) -> "AdjacencyBlock":
        if len(buf) < 7:
            raise CorruptAdjacencyBlock(
                f"adjacency block of {len(buf)} bytes is shorter than the "
                "minimal frame"
            )
        if buf[0] != ADJ_MAGIC:
            raise CorruptAdjacencyBlock(
                f"bad adjacency magic {buf[0]:#04x}, expected {ADJ_MAGIC:#04x}"
            )
        body, crc_bytes = buf[:-4], buf[-4:]
        if zlib.crc32(body) != _CRC.unpack(crc_bytes)[0]:
            raise CorruptAdjacencyBlock("adjacency block CRC32 mismatch")
        count, offset = _decode_one_varint(body, 1)
        deltas, offset = decode_varints(body, offset, count)
        targets: list[int] = []
        append = targets.append
        prev = 0
        for d in deltas:
            prev += zigzag_decode(d)
            append(prev)
        if offset >= len(body):
            raise CorruptAdjacencyBlock("adjacency block missing props flag")
        flag = body[offset]
        offset += 1
        props: tuple[dict[str, Any], ...] = ()
        if flag == 1:
            decoded = []
            for _ in range(count):
                blen, offset = _decode_one_varint(body, offset)
                if offset + blen > len(body):
                    raise CorruptAdjacencyBlock(
                        "props blob runs past the end of the block"
                    )
                try:
                    p, used = unpack_props(body, offset)
                except Exception as exc:
                    raise CorruptAdjacencyBlock(
                        f"undecodable props blob: {exc}"
                    ) from exc
                if used != offset + blen:
                    raise CorruptAdjacencyBlock(
                        f"props blob length {blen} disagrees with its payload"
                    )
                decoded.append(p)
                offset += blen
            props = tuple(decoded)
        elif flag != 0:
            raise CorruptAdjacencyBlock(f"unknown props-column flag {flag}")
        if offset != len(body):
            raise CorruptAdjacencyBlock(
                f"{len(body) - offset} trailing bytes after props column"
            )
        return cls(vertex, label, tuple(targets), props)
