"""Identifier helpers shared across the library.

Vertices and edges are identified by plain integers (``VertexId`` /
``EdgeId``) to keep hot paths allocation-free; servers by small integers
(``ServerId``); traversals by monotonically increasing ``TravelId`` values
handed out by the coordinator.
"""

from __future__ import annotations

import itertools
from typing import Iterator

VertexId = int
EdgeId = int
ServerId = int
TravelId = int
ExecId = int

#: Typed destination sentinel for the coordinator actor. The coordinator is
#: not a backend server: it is addressed out-of-band (it lives on
#: ``coordinator_server`` but has its own handler), so delivery paths and
#: fault filters use this constant instead of a bare ``-1``.
COORDINATOR: ServerId = -1


class IdAllocator:
    """Monotonic id allocator with an optional starting value.

    Used for travel ids and execution ids, where uniqueness within one
    cluster lifetime is all that is required.
    """

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def next(self) -> int:
        """Return the next unused id."""
        return next(self._counter)

    def take(self, n: int) -> list[int]:
        """Return ``n`` fresh ids as a list."""
        return [next(self._counter) for _ in range(n)]

    def stream(self) -> Iterator[int]:
        """Return the underlying infinite iterator (shared state)."""
        return self._counter
