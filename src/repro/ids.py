"""Identifier helpers shared across the library.

Vertices and edges are identified by plain integers (``VertexId`` /
``EdgeId``) to keep hot paths allocation-free; servers by small integers
(``ServerId``); traversals by monotonically increasing ``TravelId`` values
handed out by the coordinator.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterator

VertexId = int
EdgeId = int
ServerId = int
TravelId = int
ExecId = int

#: Typed destination sentinel for the coordinator actor. The coordinator is
#: not a backend server: it is addressed out-of-band (it lives on
#: ``coordinator_server`` but has its own handler), so delivery paths and
#: fault filters use this constant instead of a bare ``-1``.
COORDINATOR: ServerId = -1


class IdAllocator:
    """Monotonic id allocator with an optional starting value.

    Used for travel ids and execution ids, where uniqueness within one
    cluster lifetime is all that is required. Allocation is thread-safe:
    on the threaded runtime several timer/worker threads can race into the
    same allocator (concurrent submissions, deadline callbacks), and a bare
    ``itertools.count`` gives no atomicity guarantee for ``next()`` across
    implementations — two racing callers could observe the same id.
    """

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next(self) -> int:
        """Return the next unused id."""
        with self._lock:
            return next(self._counter)

    def take(self, n: int) -> list[int]:
        """Return ``n`` fresh ids as a contiguous list."""
        with self._lock:
            return [next(self._counter) for _ in range(n)]

    def stream(self) -> Iterator[int]:
        """Return the underlying infinite iterator.

        The iterator shares state with the allocator but bypasses its lock;
        use it only from single-threaded contexts (the simulated runtime).
        """
        return self._counter
