"""Canned traversal queries from the paper, phrased in GTravel.

Each function returns a :class:`~repro.lang.gtravel.GTravel` builder so
callers can extend the chain before compiling.
"""

from __future__ import annotations

from repro.lang.filters import EQ, RANGE
from repro.lang.gtravel import GTravel
from repro.workloads.metadata_graph import YEAR


def data_audit_query(
    user: int, t_start: float, t_end: float, kind: str = "text"
) -> GTravel:
    """§III-A1: *Find all files ending in .txt read by "userA" within a
    timeframe.*

    Adapted to the Darshan-graph schema, where executions hang off jobs:
    ``user -run-> job -hasExecutions-> execution -read-> file``.
    """
    return (
        GTravel.v(user)
        .e("run")
        .ea("ts", RANGE, (t_start, t_end))
        .e("hasExecutions")
        .e("read")
        .va("kind", EQ, kind)
        .rtn()
    )


def provenance_query(model: str = "A", annotation: str = "B") -> GTravel:
    """§III-A2: *Find the execution whose model is A and inputs have
    annotation as B* — returns the source executions via ``rtn()``."""
    return (
        GTravel.v()
        .va("type", EQ, "Execution")
        .rtn()
        .va("model", EQ, model)
        .e("read")
        .va("annotation", EQ, annotation)
    )


def suspicious_user_query(user: int, t_start: float = 0.0, t_end: float = YEAR) -> GTravel:
    """§VII-D (Table III): the influence of a suspicious user — *all files
    that were written by executions whose input files are suspicious*::

        GTravel.v(suspectUser).e('run')
               .ea('ts', RANGE, [ts, te])   // select jobs
               .e('hasExecutions')          // select executions
               .e('write')                  // select outputs
               .e('readBy')                 // select executions
               .e('write').rtn()            // outputs of executions
    """
    return (
        GTravel.v(user)
        .e("run")
        .ea("ts", RANGE, (t_start, t_end))
        .e("hasExecutions")
        .e("write")
        .e("readBy")
        .e("write")
        .rtn()
    )


def audit_scan_query(
    t_start: float = 0.0,
    t_end: float = 0.25 * YEAR,
    kind: str = "text",
    annotation: str = "B",
) -> GTravel:
    """The audit query phrased as a *scan*: no seed user, just "which files
    of this kind/annotation were read by any execution in the timeframe".

    Written forwards it enumerates every Execution and fans out over
    ``read`` edges; the selective end (two file filters) is the far end, so
    this is the planner's motivating case — the cost-based mode evaluates
    it backwards from the much smaller file set.
    """
    return (
        GTravel.v()
        .va("type", EQ, "Execution")
        .va("ts", RANGE, (t_start, t_end))
        .e("read")
        .va("kind", EQ, kind)
        .va("annotation", EQ, annotation)
        .rtn()
    )


def k_hop_lineage(file: int, hops: int = 3) -> GTravel:
    """k-hop data lineage via the ``repeat`` operator: from one file, follow
    *derived-from* chains — ``readBy`` to the consuming execution, ``write``
    to its outputs — exactly ``hops`` times. ``hops=0`` is the identity
    (the file itself); the fixed bound makes the traversal depth explicit
    instead of baking ``2 * hops`` ``e()`` calls into the chain."""
    return GTravel.v(file).repeat(GTravel.s().e("readBy").e("write")).times(hops)


def agent_exploration(user: int, kind: str = "text") -> GTravel:
    """Agent-style metadata exploration: from a user, find the jobs whose
    executions read files of ``kind`` (``as_``/``back`` keeps the *jobs*,
    not the files), then survey everything those jobs' executions touched —
    inputs and outputs merged server-side by ``union`` — and reduce to a
    per-type census at the coordinator.

    One query exercising all four composite operator families; the bench
    ``lang_ops`` experiment uses it as the mixed-operator cell.
    """
    return (
        GTravel.v(user)
        .e("run")
        .as_("jobs")
        .e("hasExecutions")
        .e("read")
        .va("kind", EQ, kind)
        .back("jobs")
        .e("hasExecutions")
        .union(GTravel.s().e("read"), GTravel.s().e("write"))
        .group_count()
    )


def rmat_kstep_query(source: int, steps: int, label: str = "link") -> GTravel:
    """The synthetic-workload k-step traversal (§VII-B): follow ``label``
    edges for ``steps`` hops from one randomly selected vertex."""
    q = GTravel.v(source)
    for _ in range(steps):
        q = q.e(label)
    return q


def qos_mixed_workload(
    seed: int,
    nvertices: int,
    *,
    nscans: int = 1,
    nsmall: int = 8,
    small_steps: int = 2,
    scan_steps: int = 8,
    label: str = "link",
) -> list[dict]:
    """The multi-tenant QoS workload: ``nscans`` long ``scan_steps``-hop
    batch scans co-running with ``nsmall`` short interactive traversals, all
    over the same R-MAT graph.

    Returns one dict per submission, in submission order (scans first, so
    FIFO head-of-line blocking is on full display: every interactive query
    arrives behind the whole batch)::

        {"query": GTravel, "qos": {"tenant": ...}, "kind": "scan"|"small"}

    The ``qos`` dict feeds straight into ``Cluster.submit``/``traverse_many``:
    scans run as tenant ``batch``, the small queries as ``interactive``.
    Deterministic per (seed, nvertices): sources come from a dedicated
    ``random.Random(seed)``.
    """
    import random

    rng = random.Random(seed)
    items = [
        {
            "query": rmat_kstep_query(rng.randrange(nvertices), scan_steps, label),
            "qos": {"tenant": "batch"},
            "kind": "scan",
        }
        for _ in range(nscans)
    ]
    for _ in range(nsmall):
        items.append(
            {
                "query": rmat_kstep_query(
                    rng.randrange(nvertices), small_steps, label
                ),
                "qos": {"tenant": "interactive"},
                "kind": "small",
            }
        )
    return items
