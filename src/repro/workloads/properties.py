"""Random property payload helpers.

The paper's synthetic graphs attach "randomly generated attributes ... (the
attribute size is 128 bytes)" to vertices and edges; these helpers produce
payloads of a controlled serialized size so the storage cost model sees the
same byte volumes.
"""

from __future__ import annotations

import numpy as np

from repro.graph.property import props_size_bytes

#: serialized overhead of a one-entry props dict holding a bytes blob
_BLOB_OVERHEAD = 8 + 8 + 4 + 1 + 8  # count + keylen + key"blob" + tag + len


def blob_props(rng: np.random.Generator, total_bytes: int = 128) -> dict:
    """A property dict whose serialized size is ≈ ``total_bytes``."""
    payload = max(1, total_bytes - _BLOB_OVERHEAD)
    return {"blob": rng.bytes(payload)}


def sized_props(rng: np.random.Generator, total_bytes: int, **extra) -> dict:
    """Extra scalar properties padded with a blob up to ``total_bytes``."""
    props = dict(extra)
    used = props_size_bytes(props)
    remaining = total_bytes - used - _BLOB_OVERHEAD
    if remaining > 0:
        props["blob"] = rng.bytes(remaining)
    return props


def random_label(rng: np.random.Generator, choices: tuple[str, ...]) -> str:
    return choices[int(rng.integers(len(choices)))]
