"""Synthetic Darshan-flavoured HPC rich-metadata graph.

The paper's real workload imports one year of Darshan I/O characterization
logs from the Intrepid supercomputer into a property graph (Table II:
177 users, 47.6k jobs, 123.4M executions, 34.6M files, 239.8M edges), a
small-world graph with power-law degree distributions.

The Darshan data at that scale is not available offline, so this generator
produces a graph with the same *shape*:

* the entity chain User --run--> Job --hasExecutions--> Execution
  --exe/read/write--> File, plus File --readBy--> Execution reverse edges
  (the Table III audit query traverses them);
* per-user job counts and file popularity follow Zipf laws, yielding the
  power-law in-degrees the paper reports;
* timestamps spread over a simulated year so RANGE filters select real
  subsets;
* entity-count *ratios* follow Table II at a configurable scale.

See DESIGN.md ("What we cannot have, and what we substitute").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.builder import GraphBuilder, PropertyGraph
from repro.graph.schema import hpc_metadata_schema

#: Seconds in the simulated year of logs.
YEAR = 365 * 86400

#: Table II of the paper, for ratio preservation and reporting.
PAPER_TABLE2 = {
    "users": 177,
    "jobs": 47_600,
    "executions": 123_400_000,
    "files": 34_600_000,
    "edges": 239_800_000,
}


@dataclass(frozen=True)
class MetadataGraphConfig:
    """Generator knobs. Defaults give a laptop-sized graph (~15k vertices)."""

    users: int = 48
    mean_jobs_per_user: float = 12.0
    mean_execs_per_job: float = 8.0
    files: int = 4096
    mean_reads_per_exec: float = 1.2
    mean_writes_per_exec: float = 0.8
    executable_pool: int = 64
    zipf_alpha: float = 1.8  # file-popularity skew (power-law driver)
    models: tuple[str, ...] = ("A", "B", "C", "D")
    annotations: tuple[str, ...] = ("raw", "calibrated", "B", "derived")
    file_kinds: tuple[str, ...] = ("text", "binary", "data")
    seed: int = 42


@dataclass
class MetadataGraphStats:
    """Entity counts of a generated graph, Table II style."""

    users: int = 0
    jobs: int = 0
    executions: int = 0
    files: int = 0
    edges: int = 0
    by_label: dict[str, int] = field(default_factory=dict)

    def row(self) -> dict[str, int]:
        return {
            "users": self.users,
            "jobs": self.jobs,
            "executions": self.executions,
            "files": self.files,
            "edges": self.edges,
        }

    def ratios(self) -> dict[str, float]:
        """Entity counts normalized by user count (comparable across scales)."""
        u = max(1, self.users)
        return {k: v / u for k, v in self.row().items()}


@dataclass
class MetadataGraph:
    """The generated graph plus the ids needed to phrase paper queries."""

    graph: PropertyGraph
    stats: MetadataGraphStats
    user_ids: list[int]
    job_ids: list[int]
    execution_ids: list[int]
    file_ids: list[int]

    def user_named(self, name: str) -> int:
        for uid in self.user_ids:
            if self.graph.vertex(uid).props.get("name") == name:
                return uid
        raise KeyError(name)


def _zipf_choice(
    rng: np.random.Generator, n: int, size: int, alpha: float
) -> np.ndarray:
    """Zipf-distributed indices over [0, n) (rank-frequency power law)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    probs = ranks ** (-alpha)
    probs /= probs.sum()
    return rng.choice(n, size=size, p=probs)


def generate_metadata_graph(config: MetadataGraphConfig) -> MetadataGraph:
    """Build the synthetic rich-metadata property graph."""
    rng = np.random.default_rng(config.seed)
    builder = GraphBuilder(schema=hpc_metadata_schema())
    stats = MetadataGraphStats()
    by_label: dict[str, int] = {}

    def edge(src: int, dst: int, label: str, **props) -> None:
        builder.edge(src, dst, label, **props)
        by_label[label] = by_label.get(label, 0) + 1
        stats.edges += 1

    # Files first: a shared pool with Zipf popularity.
    file_ids = [
        builder.vertex(
            "File",
            name=f"/projects/data/f{i:06d}",
            kind=config.file_kinds[int(rng.integers(len(config.file_kinds)))],
            annotation=config.annotations[int(rng.integers(len(config.annotations)))],
            size=int(rng.lognormal(14, 2)),
        )
        for i in range(config.files)
    ]
    executable_ids = file_ids[: config.executable_pool]

    user_ids: list[int] = []
    job_ids: list[int] = []
    execution_ids: list[int] = []

    # Per-user job counts follow a Zipf-like skew: a few power users own
    # most of the jobs, as in production facilities.
    user_weights = (np.arange(1, config.users + 1, dtype=np.float64)) ** (-1.1)
    user_weights /= user_weights.sum()
    total_jobs = max(config.users, int(config.users * config.mean_jobs_per_user))
    jobs_per_user = rng.multinomial(total_jobs, user_weights)

    for u in range(config.users):
        uid = builder.vertex("User", name=f"user{u:04d}", uid=1000 + u, group="science")
        user_ids.append(uid)
        stats.users += 1
        for _ in range(int(jobs_per_user[u])):
            ts = float(rng.uniform(0, YEAR))
            jid = builder.vertex(
                "Job",
                jobid=len(job_ids) + 1,
                queue=("prod" if rng.random() < 0.8 else "debug"),
                ts=ts,
            )
            job_ids.append(jid)
            stats.jobs += 1
            edge(uid, jid, "run", ts=ts)

            n_execs = max(1, int(rng.poisson(config.mean_execs_per_job)))
            exe_file = executable_ids[
                int(_zipf_choice(rng, len(executable_ids), 1, 1.2)[0])
            ]
            for rank in range(n_execs):
                ets = ts + float(rng.uniform(0, 3600))
                eid = builder.vertex(
                    "Execution",
                    model=config.models[int(rng.integers(len(config.models)))],
                    params=f"-n {int(rng.integers(1, 4096))}",
                    ts=ets,
                    rank=rank,
                )
                execution_ids.append(eid)
                stats.executions += 1
                edge(jid, eid, "hasExecutions", ts=ets)
                edge(eid, exe_file, "exe", ts=ets)

                n_reads = int(rng.poisson(config.mean_reads_per_exec))
                if n_reads:
                    targets = _zipf_choice(rng, config.files, n_reads, config.zipf_alpha)
                    for t in np.unique(targets):
                        fid = file_ids[int(t)]
                        edge(eid, fid, "read", ts=ets, readSize=int(rng.lognormal(12, 2)))
                        edge(fid, eid, "readBy", ts=ets)
                n_writes = int(rng.poisson(config.mean_writes_per_exec))
                if n_writes:
                    targets = _zipf_choice(rng, config.files, n_writes, config.zipf_alpha)
                    for t in np.unique(targets):
                        fid = file_ids[int(t)]
                        edge(eid, fid, "write", ts=ets, writeSize=int(rng.lognormal(13, 2)))
                        edge(fid, eid, "writtenBy", ts=ets)

    stats.files = config.files
    stats.by_label = by_label
    graph = builder.build()
    return MetadataGraph(
        graph=graph,
        stats=stats,
        user_ids=user_ids,
        job_ids=job_ids,
        execution_ids=execution_ids,
        file_ids=file_ids,
    )


def paper_scaled_config(scale: float = 1.0, seed: int = 42) -> MetadataGraphConfig:
    """A config whose entity ratios follow Table II, shrunk by ``scale``.

    ``scale=1.0`` yields roughly 50 users / 15k vertices; raising it grows
    every population proportionally (the paper's graph corresponds to a
    scale far beyond laptop reach — see EXPERIMENTS.md for the ratio check).
    """
    users = max(8, int(48 * scale))
    return MetadataGraphConfig(
        users=users,
        mean_jobs_per_user=12.0,
        mean_execs_per_job=8.0,
        files=max(512, int(4096 * scale)),
        seed=seed,
    )
