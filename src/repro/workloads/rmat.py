"""R-MAT scale-free graph generator (Chakrabarti, Zhan & Faloutsos 2004).

The paper generates "directed property graphs with 2^20 vertices and an
average out-degree of 16 ... with parameters a=0.45, b=0.15, c=0.15, d=0.25,
which create a power-law graph with moderate out-degree skewness"
(RMAT-1, §VII). This module reproduces that generator, vectorized with
NumPy: per recursion level each edge picks a quadrant, accumulating one bit
of the source and destination ids.

The benchmark default scales the graph down (see ``paper_rmat1``) so runs
finish on a laptop; the structure (power-law skew) is scale-free by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import PropertyGraph
from repro.workloads.properties import sized_props


@dataclass(frozen=True)
class RMATConfig:
    """R-MAT parameters. ``2**scale`` vertices, ``edge_factor`` avg out-degree."""

    scale: int = 12
    edge_factor: int = 16
    a: float = 0.45
    b: float = 0.15
    c: float = 0.15
    d: float = 0.25
    seed: int = 1
    attr_bytes: int = 128
    edge_attr_bytes: int = 32
    vertex_type: str = "Node"
    edge_label: str = "link"

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if abs(total - 1.0) > 1e-9:
            raise GraphError(f"RMAT quadrant probabilities sum to {total}, not 1")
        if self.scale < 1 or self.scale > 30:
            raise GraphError(f"scale {self.scale} out of supported range 1..30")
        if self.edge_factor < 1:
            raise GraphError("edge_factor must be >= 1")

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        return self.num_vertices * self.edge_factor


def rmat_edge_array(config: RMATConfig) -> np.ndarray:
    """Generate the (E, 2) array of directed edges, fully vectorized.

    Per recursion level: draw a uniform u in [0, 1) per edge and map it to a
    quadrant through the cumulative (a, a+b, a+b+c) thresholds; the row bit
    is set for quadrants c/d, the column bit for b/d.
    """
    rng = np.random.default_rng(config.seed)
    n_edges = config.num_edges
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    t_ab = config.a + config.b
    t_abc = t_ab + config.c
    for level in range(config.scale):
        u = rng.random(n_edges)
        row_bit = u >= t_ab
        col_bit = np.where(row_bit, u >= t_abc, u >= config.a)
        src = (src << 1) | row_bit.astype(np.int64)
        dst = (dst << 1) | col_bit.astype(np.int64)
    return np.column_stack([src, dst])


def rmat_graph(config: RMATConfig) -> PropertyGraph:
    """Materialize the R-MAT property graph (single vertex/edge type, random
    attributes of the configured serialized size, as in the paper)."""
    rng = np.random.default_rng(config.seed + 0x5EED)
    graph = PropertyGraph()
    n = config.num_vertices
    for vid in range(n):
        graph.add_vertex(
            vid,
            config.vertex_type,
            sized_props(rng, config.attr_bytes, w=int(rng.integers(0, 1 << 16))),
        )
    edges = rmat_edge_array(config)
    weights = rng.integers(0, 1 << 16, size=len(edges))
    for i, (src, dst) in enumerate(edges):
        graph.add_edge(
            int(src),
            int(dst),
            config.edge_label,
            {"w": int(weights[i])} if config.edge_attr_bytes <= 32 else
            sized_props(rng, config.edge_attr_bytes, w=int(weights[i])),
        )
    return graph


def paper_rmat1(scale: int = 12, edge_factor: int = 16, seed: int = 1) -> RMATConfig:
    """The paper's RMAT-1 parameter set at a configurable scale.

    The paper uses scale=20; benchmarks default to 12 (4096 vertices) so a
    full engine sweep completes in minutes of wall time. Pass
    ``REPRO_BENCH_SCALE`` to the benchmark harness to raise it.
    """
    return RMATConfig(scale=scale, edge_factor=edge_factor, a=0.45, b=0.15, c=0.15, d=0.25, seed=seed)


def pick_start_vertex(config: RMATConfig, rng_seed: int = 7, min_degree: int = 1) -> int:
    """The paper traverses "starting from the same randomly selected vertex".

    Picks a random vertex with out-degree >= ``min_degree`` (a degree-0
    source would make every traversal trivially empty).
    """
    edges = rmat_edge_array(config)
    degrees = np.bincount(edges[:, 0], minlength=config.num_vertices)
    candidates = np.flatnonzero(degrees >= min_degree)
    if candidates.size == 0:
        raise GraphError("no vertex satisfies the degree requirement")
    rng = np.random.default_rng(rng_seed)
    return int(candidates[int(rng.integers(candidates.size))])
