"""Workload generators: R-MAT graphs, the Darshan-like metadata graph, and
the paper's canned queries."""

from repro.workloads.metadata_graph import (
    PAPER_TABLE2,
    YEAR,
    MetadataGraph,
    MetadataGraphConfig,
    MetadataGraphStats,
    generate_metadata_graph,
    paper_scaled_config,
)
from repro.workloads.properties import blob_props, sized_props
from repro.workloads.queries import (
    agent_exploration,
    audit_scan_query,
    data_audit_query,
    k_hop_lineage,
    provenance_query,
    qos_mixed_workload,
    rmat_kstep_query,
    suspicious_user_query,
)
from repro.workloads.rmat import (
    RMATConfig,
    paper_rmat1,
    pick_start_vertex,
    rmat_edge_array,
    rmat_graph,
)

__all__ = [
    "PAPER_TABLE2",
    "YEAR",
    "MetadataGraph",
    "MetadataGraphConfig",
    "MetadataGraphStats",
    "generate_metadata_graph",
    "paper_scaled_config",
    "blob_props",
    "sized_props",
    "agent_exploration",
    "audit_scan_query",
    "data_audit_query",
    "k_hop_lineage",
    "provenance_query",
    "qos_mixed_workload",
    "rmat_kstep_query",
    "suspicious_user_query",
    "RMATConfig",
    "paper_rmat1",
    "pick_start_vertex",
    "rmat_edge_array",
    "rmat_graph",
]
