"""Reliable at-least-once transport over the unreliable wire.

The raw runtimes deliver every message exactly once; with a fault plan
installed they drop, duplicate, delay, and reorder — and crashed servers eat
traffic silently. :class:`ReliableChannel` restores usable semantics the way
TCP does over IP:

* every payload is wrapped in a :class:`DataFrame` with a globally unique
  ``seq`` and retransmitted on a seeded exponential backoff (+/- jitter)
  until the receiver's :class:`AckFrame` arrives or ``max_retries`` is
  exhausted;
* a bounded per-link in-flight window throttles senders, so a dead receiver
  cannot absorb unbounded retransmission state;
* the receiver deduplicates on ``(travel_id, attempt, seq)`` before handing
  the payload to the engine/coordinator handler — so the layers above see
  *effectively-once* delivery and whole-traversal restarts become the last
  resort (paper §IV-C) instead of the answer to a single lost RPC;
* retry exhaustion invokes ``on_delivery_failure`` — the missed-ack signal
  the coordinator uses to suspect a server crash and trigger fine-grained
  replay of only the executions placed on it.

Installed via :meth:`repro.runtime.base.Runtime.install_channel`, which
re-points the registered handlers at the channel's frame handlers; engines
and the coordinator are untouched. All channel bookkeeping is out-of-band
(costs no simulated time); only frames on the wire pay network latency.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.ids import COORDINATOR, ServerId, TravelId
from repro.net.message import Message
from repro.sim.rng import derive_seed

_FRAME_OVERHEAD = 16  # seq + framing on top of the payload's wire size


@dataclass
class DataFrame(Message):
    """One transmission attempt of ``payload`` from ``src`` to ``dst``."""

    seq: int = 0
    src: ServerId = -1
    dst: ServerId = -1
    payload: Optional[Message] = None

    @property
    def nbytes(self) -> int:
        return _FRAME_OVERHEAD + (self.payload.nbytes if self.payload else 0)


@dataclass
class AckFrame(Message):
    """Receiver's acknowledgement of one ``seq``."""

    seq: int = 0

    @property
    def nbytes(self) -> int:
        return _FRAME_OVERHEAD


@dataclass(frozen=True)
class ReliableConfig:
    """Ack/retry policy, in virtual seconds."""

    ack_timeout: float = 0.002  # before the first retransmission
    backoff: float = 2.0
    jitter: float = 0.25  # +/- fraction, drawn from the seeded stream
    max_retries: int = 8
    window: int = 32  # per-(src, dst) unacked frames


@dataclass
class _InFlight:
    """Sender-side state of one unacked payload."""

    seq: int
    src: ServerId
    dst: ServerId
    payload: Message
    frame: DataFrame
    attempts: int = 0
    retry_span: int = 0

    @property
    def link(self) -> tuple[ServerId, ServerId]:
        return (self.src, self.dst)


class ReliableChannel:
    """At-least-once sender/receiver state for one cluster."""

    def __init__(
        self,
        runtime,
        *,
        config: Optional[ReliableConfig] = None,
        metrics=None,
        spans=None,
        trace=None,
        seed: int = 0,
    ):
        self.runtime = runtime
        self.config = config or ReliableConfig()
        self.metrics = metrics
        self.spans = spans
        self.trace = trace
        self._rng = np.random.default_rng(derive_seed(seed, "net.reliable"))
        self._seq = itertools.count(1)
        self._inflight: dict[int, _InFlight] = {}
        self._queued: dict[tuple[ServerId, ServerId], deque] = {}
        self._link_inflight: dict[tuple[ServerId, ServerId], int] = {}
        #: receiver address -> travel id -> {(attempt, seq), ...}
        self._seen: dict[ServerId, dict[TravelId, set]] = {}
        self._upper: dict[ServerId, Callable[[Message], None]] = {}
        self._upper_coord: Optional[Callable[[Message], None]] = None
        self._lock = threading.RLock()
        #: invoked as ``fn(src, dst, payload)`` when retries are exhausted
        self.on_delivery_failure: Optional[Callable[..., None]] = None
        #: the live coordinator incarnation; bumped by the recovery
        #: supervisor so frames from a dead epoch are never acked (the
        #: sender retries until its own stale attempt quiesces)
        self.coordinator_epoch: int = 0

    # -- wiring (called by Runtime.install_channel) -------------------------

    def attach(self, runtime, upper_handlers, upper_coordinator) -> None:
        self.runtime = runtime
        self._upper = dict(upper_handlers)
        self._upper_coord = upper_coordinator

    def server_frame_handler(self, server_id: ServerId):
        def handle(msg: Message) -> None:
            if isinstance(msg, AckFrame):
                self._on_ack(msg)
            elif isinstance(msg, DataFrame):
                self._on_data(server_id, msg)
            else:  # raw message injected below the channel (tests)
                self._upper[server_id](msg)

        return handle

    def coordinator_frame_handler(self, msg: Message) -> None:
        if isinstance(msg, AckFrame):  # pragma: no cover - acks go to servers
            self._on_ack(msg)
        elif isinstance(msg, DataFrame):
            self._on_data(COORDINATOR, msg)
        else:
            self._upper_coord(msg)

    # -- sending ------------------------------------------------------------

    def send(self, src: ServerId, dst: ServerId, payload: Message) -> None:
        """Queue one payload for reliable delivery (``dst`` may be
        :data:`~repro.ids.COORDINATOR`)."""
        with self._lock:
            seq = next(self._seq)
            frame = DataFrame(payload.travel_id, seq=seq, src=src, dst=dst, payload=payload)
            entry = _InFlight(seq=seq, src=src, dst=dst, payload=payload, frame=frame)
            self._count("net.sends", type=type(payload).__name__)
            link = entry.link
            if self._link_inflight.get(link, 0) >= self.config.window:
                self._queued.setdefault(link, deque()).append(entry)
                self._count("net.window_stalls")
                return
            self._admit(entry)

    def _admit(self, entry: _InFlight) -> None:
        link = entry.link
        self._inflight[entry.seq] = entry
        self._link_inflight[link] = self._link_inflight.get(link, 0) + 1
        self._transmit(entry)

    def _transmit(self, entry: _InFlight) -> None:
        entry.attempts += 1
        if entry.dst == COORDINATOR:
            self.runtime.raw_deliver_to_coordinator(entry.src, entry.frame)
        else:
            self.runtime.raw_deliver(entry.src, entry.dst, entry.frame)
        timeout = self.config.ack_timeout * (self.config.backoff ** (entry.attempts - 1))
        u = float(self._rng.uniform())
        timeout *= 1.0 + self.config.jitter * (2.0 * u - 1.0)
        expected = entry.attempts
        self.runtime.schedule(timeout, lambda: self._on_timeout(entry.seq, expected))

    def _on_timeout(self, seq: int, expected_attempts: int) -> None:
        failed: Optional[_InFlight] = None
        with self._lock:
            entry = self._inflight.get(seq)
            if entry is None or entry.attempts != expected_attempts:
                return  # acked, lost to a crash, or superseded by a retry
            if entry.attempts > self.config.max_retries:
                self._release(entry)
                self._count("net.delivery_failed", dst=entry.dst)
                if self.spans is not None and entry.retry_span:
                    self.spans.end(
                        entry.retry_span, outcome="failed", retries=entry.attempts - 1
                    )
                self._trace_event("net.delivery_failed", entry)
                failed = entry
            else:
                self._count("net.retries", type=type(entry.payload).__name__)
                self._trace_event("net.retry", entry)
                if self.spans is not None and entry.retry_span == 0:
                    entry.retry_span = self.spans.begin(
                        "retry",
                        f"seq{entry.seq}",
                        type=type(entry.payload).__name__,
                        src=entry.src,
                        dst=entry.dst,
                    )
                self._transmit(entry)
        # The failure callback runs OUTSIDE the channel lock: on the threaded
        # runtime it takes the coordinator's server lock, and a trampoline
        # holding a server lock may concurrently be waiting on the channel
        # lock in send() — invoking under the lock would deadlock.
        if failed is not None and self.on_delivery_failure is not None:
            self.on_delivery_failure(failed.src, failed.dst, failed.payload)

    def _release(self, entry: _InFlight) -> None:
        """Remove from in-flight and pump the freed window slot."""
        self._inflight.pop(entry.seq, None)
        link = entry.link
        self._link_inflight[link] = max(0, self._link_inflight.get(link, 1) - 1)
        q = self._queued.get(link)
        while q and self._link_inflight[link] < self.config.window:
            self._admit(q.popleft())

    # -- receiving ----------------------------------------------------------

    def _on_ack(self, ack: AckFrame) -> None:
        with self._lock:
            entry = self._inflight.get(ack.seq)
            if entry is None:
                return  # duplicate ack, or sender state lost to a crash
            self._count("net.acks")
            if self.spans is not None and entry.retry_span:
                self.spans.end(entry.retry_span, outcome="ok", retries=entry.attempts - 1)
            self._release(entry)

    def _on_data(self, addr: ServerId, frame: DataFrame) -> None:
        payload = frame.payload
        # Always (re-)ack: the previous ack may itself have been lost.
        ack_src = self.runtime.coordinator_server if addr == COORDINATOR else addr
        self.runtime.raw_deliver(ack_src, frame.src, AckFrame(frame.travel_id, seq=frame.seq))
        if addr == COORDINATOR:
            # Epoch fence below the coordinator: a frame stamped by a dead
            # incarnation is acked at the transport level (the RST-like ack
            # frees the sender's bounded window — stale executions keep
            # streaming reports long after recovery, and never-acked frames
            # would head-of-line-block fresh epoch traffic) but is never
            # delivered, and never enters the new epoch's dedup window: the
            # receiver key is (epoch, attempt, seq), so a dead epoch can
            # neither suppress nor masquerade as post-recovery traffic.
            msg_epoch = getattr(payload, "epoch", 0)
            if msg_epoch != self.coordinator_epoch:
                self._count(
                    "coord.fenced", layer="net", type=type(payload).__name__
                )
                return
        key = (
            getattr(payload, "epoch", 0),
            getattr(payload, "attempt", 0),
            frame.seq,
        )
        with self._lock:
            seen = self._seen.setdefault(addr, {}).setdefault(frame.travel_id, set())
            if key in seen:
                self._count("net.dup_suppressed", type=type(payload).__name__)
                if self.trace is not None:
                    self.trace.record(
                        "net.dup_drop",
                        travel_id=frame.travel_id,
                        exec_id=getattr(payload, "exec_id", None),
                        server_id=addr,
                        attempt=getattr(payload, "attempt", 0),
                        seq=frame.seq,
                        type=type(payload).__name__,
                    )
                return
            seen.add(key)
            handler = self._upper_coord if addr == COORDINATOR else self._upper[addr]
        handler(payload)

    # -- lifecycle ----------------------------------------------------------

    def on_server_crash(self, server: ServerId) -> None:
        """A crashed server loses its transport bookkeeping: unacked sends
        it originated stop retrying, and its receiver dedup set is cleared
        (retransmissions after recovery are re-delivered; the engines'
        idempotent replay handling absorbs them)."""
        with self._lock:
            self._seen.pop(server, None)
            lost = [e for e in self._inflight.values() if e.src == server]
            for entry in lost:
                if self.spans is not None and entry.retry_span:
                    self.spans.end(entry.retry_span, outcome="crashed", retries=entry.attempts - 1)
                self._inflight.pop(entry.seq, None)
                link = entry.link
                self._link_inflight[link] = max(0, self._link_inflight.get(link, 1) - 1)
            if lost:
                self._count("net.inflight_lost", len(lost), server=server)
            for link in [l for l in self._queued if l[0] == server]:
                del self._queued[link]

    def on_coordinator_crash(self) -> None:
        """The coordinator actor died with its host: clear the COORDINATOR
        receiver dedup window and reset every coordinator-destined
        connection. The next epoch deduplicates on its own
        ``(epoch, attempt, seq)`` keys, so pre-crash sequence numbers can
        never suppress (or be acked as) post-recovery traffic.

        Dropping unacked coordinator-destined frames models the connection
        reset a real process death causes — while the host is down no ack
        can flow, so in-flight and queued frames would otherwise burn their
        whole retry budget against a dead link and hold the bounded
        per-link window hostage until recovery. The recovery supervisor
        calls this again at recovery time to clear frames senders queued
        during the down window (post-recovery, stale frames that do reach
        the fence are acked-but-dropped, so they cannot re-clog it)."""
        with self._lock:
            self._seen.pop(COORDINATOR, None)
            stale = [e for e in self._inflight.values() if e.dst == COORDINATOR]
            for entry in stale:
                if self.spans is not None and entry.retry_span:
                    self.spans.end(
                        entry.retry_span, outcome="crashed",
                        retries=entry.attempts - 1,
                    )
                self._inflight.pop(entry.seq, None)
                link = entry.link
                self._link_inflight[link] = max(0, self._link_inflight.get(link, 1) - 1)
            if stale:
                self._count("net.inflight_lost", len(stale), server=COORDINATOR)
            for link in [l for l in self._queued if l[1] == COORDINATOR]:
                del self._queued[link]

    def forget_travel(self, travel_id: TravelId) -> None:
        """Prune receiver dedup state once a traversal completes."""
        with self._lock:
            for per_travel in self._seen.values():
                per_travel.pop(travel_id, None)

    # -- introspection -------------------------------------------------------

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def _count(self, name: str, n: float = 1, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.count(name, n, **labels)

    def _trace_event(self, kind: str, entry: _InFlight) -> None:
        if self.trace is None:
            return
        self.trace.record(
            kind,
            travel_id=entry.payload.travel_id,
            exec_id=getattr(entry.payload, "exec_id", None),
            server_id=entry.dst,
            attempt=getattr(entry.payload, "attempt", 0),
            seq=entry.seq,
            attempts=entry.attempts,
            src=entry.src,
            type=type(entry.payload).__name__,
        )
