"""Typed RPC messages exchanged by backend servers and the coordinator.

These correspond to the paper's ZeroMQ RPCs: traversal dispatches between
servers (black circles in Fig. 3), status/progress reports to the coordinator
(green circles), and result returns. Each message knows its approximate wire
size so the network model can charge transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ids import ExecId, ServerId, TravelId, VertexId

#: Per-rtn-level anchor sets carried by a frontier vertex: ``anchors[i]`` is
#: the set of vertices at the i-th intermediate rtn level that lie on some
#: path leading to this vertex.
Anchors = tuple[frozenset[VertexId], ...]

#: A frontier batch: vertex id -> anchors.
Entries = dict[VertexId, Anchors]

_ENTRY_BYTES = 24  # id + framing
_ANCHOR_BYTES = 8
_HEADER_BYTES = 64
_PLAN_BYTES = 256  # serialized GTravel instance, shipped with each dispatch


def entries_nbytes(entries: Entries) -> int:
    total = 0
    for anchors in entries.values():
        total += _ENTRY_BYTES
        for level_set in anchors:
            total += _ANCHOR_BYTES * max(1, len(level_set))
    return total


@dataclass
class Message:
    """Base class; ``travel_id`` scopes every message to one traversal.

    ``epoch`` is the coordinator incarnation that (transitively) caused the
    message: stamped on every dispatch, echoed by servers on everything
    derived from it. A recovered coordinator runs under a new epoch and
    fences messages carrying an older one, so in-flight reports from before
    a coordinator crash can never corrupt post-recovery bookkeeping.
    """

    travel_id: TravelId
    epoch: int = 0

    @property
    def nbytes(self) -> int:
        return _HEADER_BYTES


@dataclass
class TraverseRequest(Message):
    """Continue a traversal: ``entries`` are working-set vertices at
    ``level``, owned by the destination server.

    ``all_sources=True`` is the level-0 broadcast form used when the plan's
    ``v()`` has no explicit ids (the server enumerates its local index).
    ``attempt`` tags the restart generation so stale requests from a failed
    attempt can be ignored.
    """

    level: int = 0
    entries: Entries = field(default_factory=dict)
    exec_id: ExecId = 0
    from_server: ServerId = -1
    all_sources: bool = False
    attempt: int = 0

    @property
    def nbytes(self) -> int:
        return _HEADER_BYTES + _PLAN_BYTES + entries_nbytes(self.entries)


@dataclass
class ExecStatus(Message):
    """An execution's termination report plus the executions it created.

    The coordinator marks ``exec_id`` terminated, registers every
    ``created`` pair (exec id, target server), and expects
    ``results_sent`` result-bearing messages to eventually arrive.
    """

    exec_id: ExecId = 0
    server: ServerId = -1
    #: (exec id, target server, level it will work at)
    created: tuple[tuple[ExecId, ServerId, int], ...] = ()
    results_sent: int = 0
    level: Optional[int] = None  # level the execution worked at (progress)
    attempt: int = 0

    @property
    def nbytes(self) -> int:
        return _HEADER_BYTES + 20 * len(self.created)


@dataclass
class ResultReport(Message):
    """Vertices to return to the client, at one return level.

    ``groups`` carries per-vertex group keys when the plan ends in a
    ``group_count()`` aggregate — ``(vertex id, key)`` pairs, sorted by
    vertex id so reports are deterministic. The coordinator reduces over
    the *deduplicated* vertex set, so re-sent reports (restarts,
    at-least-once delivery) cannot double-count.
    """

    level: int = 0
    vertices: frozenset[VertexId] = frozenset()
    groups: tuple = ()
    attempt: int = 0

    @property
    def nbytes(self) -> int:
        return _HEADER_BYTES + 8 * len(self.vertices) + 16 * len(self.groups)


@dataclass
class SuccessReport(Message):
    """Final-step notification to an rtn server: these of your anchor
    vertices (at ``rtn_level``) lie on a completed path (paper Fig. 4)."""

    rtn_level: int = 0
    anchors: frozenset[VertexId] = frozenset()
    exec_id: ExecId = 0
    attempt: int = 0

    @property
    def nbytes(self) -> int:
        return _HEADER_BYTES + 8 * len(self.anchors)


@dataclass
class ReplayExec(Message):
    """Fine-grained recovery (paper future work): the coordinator asks the
    server that *created* a lost execution to re-send its original dispatch.
    Receivers deduplicate replayed work through the same (travel, step,
    vertex) machinery as ordinary duplicates."""

    exec_id: ExecId = 0
    attempt: int = 0


# -- shard migration data plane (repro.rebalance) ----------------------------


@dataclass
class MigrateChunk(Message):
    """One batch of a shard migration's snapshot copy: raw KV pairs for a
    handful of vertices (attributes, grouped edges, and the ``~label``
    reverse-adjacency region), shipped source → target.

    ``travel_id`` carries the migration id (a disjoint id space), so the
    reliable channel and fault injector treat migration traffic exactly
    like traversal traffic. ``routing_version`` is the routing-table
    version the migration started under; the receiver fences chunks from
    a superseded migration. Imports are idempotent: the migrator dedupes
    by ``(mid, seq)``, so duplicated or re-sent chunks apply once.
    """

    mid: int = 0
    seq: int = 0
    #: raw KV pairs, exactly as exported from the source store
    pairs: tuple = ()
    #: (vertex id, namespace) location-index entries for the chunk
    meta: tuple = ()
    routing_version: int = 0
    from_server: ServerId = -1

    @property
    def nbytes(self) -> int:
        payload = sum(len(k) + len(v) for k, v in self.pairs)
        return _HEADER_BYTES + payload + 16 * len(self.meta)


@dataclass
class MigrateAck(Message):
    """Target's acknowledgement that chunk ``seq`` of migration ``mid`` is
    durably applied (or was already applied — acks are idempotent too)."""

    mid: int = 0
    seq: int = 0
    server: ServerId = -1


# -- synchronous engine control plane ---------------------------------------


@dataclass
class SyncBatch(Message):
    """Frontier batch buffered at the destination until the step barrier."""

    level: int = 0
    entries: Entries = field(default_factory=dict)
    from_server: ServerId = -1
    attempt: int = 0

    @property
    def nbytes(self) -> int:
        return _HEADER_BYTES + _PLAN_BYTES + entries_nbytes(self.entries)


@dataclass
class SyncStartStep(Message):
    """Coordinator's barrier release: process buffered level-``level``
    batches once ``expect_batches`` of them have arrived."""

    level: int = 0
    expect_batches: int = 0
    all_sources: bool = False
    attempt: int = 0


@dataclass
class SyncStepDone(Message):
    """A server's barrier report: finished its share of one step, having
    sent ``sent_counts[j]`` batches to each server j, and ``results_sent``
    result messages to the coordinator."""

    level: int = 0
    server: ServerId = -1
    sent_counts: dict[ServerId, int] = field(default_factory=dict)
    results_sent: int = 0
    anchor_counts: dict[ServerId, int] = field(default_factory=dict)
    attempt: int = 0

    @property
    def nbytes(self) -> int:
        return _HEADER_BYTES + 12 * len(self.sent_counts)
