"""Network model: per-message latency as a function of size.

Models the paper's InfiniBand QDR interconnect (4 GB/s per link, low
microsecond latency) plus the RPC software overhead of a ZeroMQ-style stack.
Latency is ``base + nbytes / bandwidth``; loopback messages (server to
itself) cost only the software overhead.

The model is intentionally contention-free: the paper's network is far from
saturated by traversal traffic (disk I/O dominates), and the phenomena under
study — barrier waits and stragglers — are disk- and scheduling-driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ids import ServerId


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters for inter-server RPC."""

    base_latency: float = 60e-6  # seconds: RPC + transport overhead
    bandwidth: float = 4.0e9  # bytes/second (IB QDR, per link per direction)
    loopback_latency: float = 10e-6  # local dispatch overhead
    #: explicit client-link parameters; default to a link 4x slower than the
    #: server fabric (clients sit on the service network — the paper's
    #: motivation for server-side traversal)
    client_base_latency: Optional[float] = None
    client_bandwidth: Optional[float] = None

    def latency(self, src: ServerId, dst: ServerId, nbytes: int) -> float:
        if src == dst:
            return self.loopback_latency
        return self.base_latency + nbytes / self.bandwidth

    def client_latency(self, nbytes: int) -> float:
        """Client <-> coordinator hop over the (slower) service network."""
        base = self.client_base_latency
        if base is None:
            base = 4 * self.base_latency
        bw = self.client_bandwidth
        if bw is None:
            bw = self.bandwidth / 4
        return base + nbytes / bw


#: The evaluation default, approximating Fusion's IB QDR fabric.
INFINIBAND_QDR = NetworkModel()

#: A slower 10 GbE-style fabric for sensitivity studies.
ETHERNET_10G = NetworkModel(base_latency=300e-6, bandwidth=1.25e9, loopback_latency=10e-6)
