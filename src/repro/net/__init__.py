"""Messaging layer: typed RPC messages and the network latency model."""

from repro.net.message import (
    Anchors,
    Entries,
    ExecStatus,
    Message,
    ResultReport,
    SuccessReport,
    SyncBatch,
    SyncStartStep,
    SyncStepDone,
    TraverseRequest,
    entries_nbytes,
)
from repro.net.reliable import AckFrame, DataFrame, ReliableChannel, ReliableConfig
from repro.net.topology import ETHERNET_10G, INFINIBAND_QDR, NetworkModel

__all__ = [
    "AckFrame",
    "DataFrame",
    "ReliableChannel",
    "ReliableConfig",
    "Anchors",
    "Entries",
    "ExecStatus",
    "Message",
    "ResultReport",
    "SuccessReport",
    "SyncBatch",
    "SyncStartStep",
    "SyncStepDone",
    "TraverseRequest",
    "entries_nbytes",
    "ETHERNET_10G",
    "INFINIBAND_QDR",
    "NetworkModel",
]
