"""Cluster assembly: servers, coordinator, client, straggler injection."""

from repro.cluster.client import GraphTrekClient
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.coordinator import Coordinator, CoordinatorConfig
from repro.cluster.server import BackendServer
from repro.cluster.straggler import ExternalInterference, StragglerSpec, paper_interference

__all__ = [
    "GraphTrekClient",
    "Cluster",
    "ClusterConfig",
    "Coordinator",
    "CoordinatorConfig",
    "BackendServer",
    "ExternalInterference",
    "StragglerSpec",
    "paper_interference",
]
