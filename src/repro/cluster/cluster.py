"""Cluster assembly: build N backend servers over a partitioned graph and
run traversals on them.

This is the top-level entry point benchmarks and examples use::

    cluster = Cluster.build(graph, ClusterConfig(nservers=8, engine=EngineKind.GRAPHTREK))
    outcome = cluster.traverse(GTravel.v(src).e("run").e("read"))
    print(outcome.stats.elapsed, sorted(outcome.result.vertices))
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.engine.async_engine import AsyncServerEngine
from repro.engine.base import EngineKind, TraversalOutcome
from repro.engine.options import EngineOptions, options_for
from repro.engine.registry import TravelRegistry
from repro.engine.statistics import StatsBoard
from repro.engine.sync_engine import SyncServerEngine
from repro.cluster.coordinator import Coordinator, CoordinatorConfig
from repro.cluster.journal import JournalStorage, TraversalJournal
from repro.cluster.recovery import RecoverySupervisor
from repro.cluster.server import BackendServer
from repro.errors import SimulationError, TelemetryDisabled, UnsupportedProfileTarget
from repro.faults.plan import FaultPlan
from repro.graph.builder import PropertyGraph
from repro.graph.stats import GraphSummary
from repro.lang.optimizer import QueryPlanner
from repro.ids import COORDINATOR, ServerId, TravelId
from repro.net.message import MigrateAck, MigrateChunk
from repro.net.reliable import ReliableChannel, ReliableConfig
from repro.lang.composite import CompositePlan
from repro.lang.gtravel import GTravel
from repro.lang.plan import TraversalPlan
from repro.net.topology import INFINIBAND_QDR, NetworkModel
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.telemetry import TelemetryConfig, TelemetryPlane
from repro.obs.trace import SamplingPolicy
from repro.partition.edge_cut import Partitioner, make_partitioner
from repro.rebalance.migrate import MigrationConfig, ShardMigrator
from repro.rebalance.policy import Rebalancer, RebalancerConfig
from repro.rebalance.routing import RoutingTable
from repro.runtime.base import InterferencePolicy
from repro.runtime.simulated import SimRuntime
from repro.sched.scheduler import SchedulerConfig, TraversalScheduler
from repro.storage.costmodel import GPFS, DiskCostModel
from repro.storage.layout import GraphStore
from repro.storage.lsm import LSMConfig


@dataclass
class ClusterConfig:
    """Everything needed to stand up a simulated deployment."""

    nservers: int = 4
    engine: Union[EngineKind, EngineOptions] = EngineKind.GRAPHTREK
    partitioner: str = "hash"  # "hash" (paper default) or "greedy"
    network: NetworkModel = INFINIBAND_QDR
    disk_model: DiskCostModel = field(default_factory=lambda: GPFS)
    disk_capacity: int = 1
    #: server page/block cache, in 4 KiB blocks (16 MiB default). The paper's
    #: nodes have 36 GB RAM, so data is warm after first touch; "cold start"
    #: means the cache is *cleared before each measured run* (which
    #: ``Cluster.traverse(cold=True)`` does), not that it stays cold.
    block_cache_blocks: int = 4096
    coordinator_server: ServerId = 0
    coordinator_config: CoordinatorConfig = field(default_factory=CoordinatorConfig)
    interference: Optional[InterferencePolicy] = None
    partition_salt: int = 0
    #: "simulated" (virtual time; the evaluation runtime) or "threaded"
    #: (real OS threads; functional cross-validation — timings are wall clock
    #: and nondeterministic).
    runtime: str = "simulated"
    #: "grouped" (paper layout: same-label edges contiguous), "interleaved"
    #: (generic column layout; the §IV-B ablation baseline), or "columnar"
    #: (delta/varint-compressed per-(vertex, label) adjacency blocks,
    #: DESIGN.md §16). Unknown names raise the typed
    #: :class:`~repro.errors.UnknownEdgeLayout` at build time.
    edge_layout: str = "grouped"
    #: declarative fault injection (drops/dups/delays/crashes); replaces the
    #: raw ``runtime.drop_filter`` hook as the supported injection point.
    fault_plan: Optional[FaultPlan] = None
    #: wrap all messaging in the at-least-once ReliableChannel (acks,
    #: seeded-backoff retries, receiver dedup). Off by default: the fault-free
    #: wire needs no acks and the paper's timings are measured without them.
    reliable: bool = False
    reliable_config: Optional[ReliableConfig] = None
    #: per-traversal flight recorder (exec lifecycle, forwards, retries,
    #: fault verdicts — see :mod:`repro.obs.trace`). Off by default; recording
    #: is out-of-band and never affects simulated timings, but the event
    #: stream costs memory on long runs (bounded by ``trace_max_events``).
    trace_enabled: bool = False
    trace_max_events: Optional[int] = None
    #: admission/fairness/backpressure limits for the traversal scheduler
    #: (:mod:`repro.sched`). None = the transparent default config: no
    #: bounds, no quotas — submissions launch immediately, as before. The
    #: launch *policy* is selected by ``EngineOptions.scheduler``.
    scheduler_config: Optional[SchedulerConfig] = None
    #: durable traversal journal + crash recovery for the coordinator
    #: (DESIGN.md §13). Off by default: without it a coordinator-hosting
    #: server crash keeps the legacy semantics (the coordinator actor's
    #: state survives; only the co-located engine loses memory).
    journal: bool = False
    #: where the journal bytes live; None = in-memory storage that models a
    #: GPFS-backed journal file (survives the simulated crash)
    journal_storage: Optional[JournalStorage] = None
    #: journal records between compacting checkpoints
    journal_checkpoint_interval: int = 256
    #: the live telemetry plane (DESIGN.md §14): windowed rollups over the
    #: metrics registry, per-tenant SLO burn-rate alerting, hot-shard
    #: detection, and the tail-sampling keep decision. On by default — the
    #: watcher-based ingestion is cheap and never touches simulated time.
    telemetry_enabled: bool = True
    telemetry_config: Optional[TelemetryConfig] = None
    slo_config: Optional[SLOConfig] = None
    #: tail-based trace sampling policy (requires ``trace_enabled`` and the
    #: telemetry plane, which drives the per-traversal keep decision). None =
    #: legacy behavior: every recorded event is retained.
    trace_sampling: Optional[SamplingPolicy] = None
    #: knobs for online shard migrations (:mod:`repro.rebalance`); None uses
    #: the defaults. The migrator itself is always wired — migrations only
    #: run when :meth:`Cluster.rebalance` or the rebalancer loop asks.
    migration: Optional[MigrationConfig] = None

    def engine_options(self) -> EngineOptions:
        if isinstance(self.engine, EngineOptions):
            return self.engine
        return options_for(self.engine)


class Cluster:
    """A running (simulated) GraphTrek deployment."""

    def __init__(
        self,
        config: ClusterConfig,
        runtime: SimRuntime,
        partitioner: Partitioner,
        servers: list[BackendServer],
        coordinator: Coordinator,
        registry: TravelRegistry,
        board: StatsBoard,
        scheduler: TraversalScheduler,
        supervisor: Optional[RecoverySupervisor] = None,
        routing: Optional[RoutingTable] = None,
        migrator: Optional[ShardMigrator] = None,
    ):
        self.config = config
        self.runtime = runtime
        self.partitioner = partitioner
        self.servers = servers
        self.coordinator = coordinator
        self.registry = registry
        self.board = board
        self.scheduler = scheduler
        self.supervisor = supervisor
        self.routing = routing
        self.migrator = migrator
        #: the policy loop, once ``start_rebalancer`` has been called
        self.rebalancer: Optional[Rebalancer] = None

    @property
    def journal(self):
        """The coordinator's traversal journal, or None when disabled."""
        return self.coordinator.journal

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, graph: PropertyGraph, config: Optional[ClusterConfig] = None) -> "Cluster":
        config = config or ClusterConfig()
        opts = config.engine_options()
        if config.runtime == "simulated":
            runtime = SimRuntime(
                config.nservers,
                network=config.network,
                disk_model=config.disk_model,
                disk_capacity=config.disk_capacity,
                interference=config.interference,
            )
        elif config.runtime == "threaded":
            from repro.runtime.threaded import ThreadRuntime

            runtime = ThreadRuntime(
                config.nservers,
                network=config.network,
                disk_model=config.disk_model,
                disk_capacity=config.disk_capacity,
                interference=config.interference,
            )
        else:
            raise SimulationError(f"unknown runtime kind {config.runtime!r}")
        runtime.coordinator_server = config.coordinator_server
        partitioner = make_partitioner(
            config.partitioner, config.nservers, graph=graph, salt=config.partition_salt
        )
        assignment = partitioner.assign(graph)
        # every routing decision in the cluster goes through the versioned
        # table so shard migrations can move ownership under live traffic
        routing = RoutingTable(partitioner.owner, config.nservers)
        registry = TravelRegistry()
        board = StatsBoard(opts.kind)
        lsm_config = LSMConfig(
            block_cache_blocks=config.block_cache_blocks,
            cost_model=config.disk_model,
        )

        # Planner provisioning. "rules"/"cost" build per-server statistics
        # summaries at load time (the coordinator plans over their merge);
        # "cost" additionally materializes reverse adjacency (~label edge
        # records) so reversed chains are executable.
        planner: Optional[QueryPlanner] = None
        reverse_index: Optional[dict[int, list]] = None
        summaries: list[GraphSummary] = []
        if opts.planner != "off":
            if opts.planner == "cost":
                reverse_index = {}
                for vid in sorted(graph.vertex_ids()):
                    for label, dst, eprops in graph.out_edges(vid):
                        reverse_index.setdefault(dst, []).append(
                            (label, vid, eprops)
                        )

        # migration wire traffic is routed to the ShardMigrator (bound after
        # the coordinator exists) instead of the engines
        migration_wire: dict = {"migrator": None}

        def _server_handler(server_id: ServerId, engine):
            def handler(msg):
                if isinstance(msg, (MigrateChunk, MigrateAck)):
                    migrator = migration_wire["migrator"]
                    if migrator is not None:
                        migrator.on_message(server_id, msg)
                    return
                engine.on_message(msg)

            return handler

        servers: list[BackendServer] = []
        for server_id in range(config.nservers):
            ctx = runtime.context(server_id)
            store = GraphStore(replace(lsm_config), edge_layout=config.edge_layout)
            store.load_partition(
                graph, assignment[server_id], reverse_index=reverse_index
            )
            if opts.planner != "off":
                summaries.append(
                    GraphSummary.from_graph(graph, assignment[server_id])
                )
            engine_cls = SyncServerEngine if opts.kind is EngineKind.SYNC else AsyncServerEngine
            engine = engine_cls(ctx, store, registry, routing.owner, opts, board)
            runtime.register_handler(server_id, _server_handler(server_id, engine))
            servers.append(BackendServer(server_id, ctx, store, engine))

        if opts.planner != "off":
            planner = QueryPlanner(
                mode=opts.planner,
                summary=GraphSummary.merged(summaries),
                reverse_available=reverse_index is not None,
            )

        channel: Optional[ReliableChannel] = None  # assigned below if reliable

        def _forget(travel_id: TravelId) -> None:
            for server in servers:
                server.engine.forget_travel(travel_id)
            if channel is not None:
                channel.forget_travel(travel_id)

        journal: Optional[TraversalJournal] = None
        if config.journal:
            journal = TraversalJournal(
                config.journal_storage,
                checkpoint_interval=config.journal_checkpoint_interval,
            )
        coordinator = Coordinator(
            ctx=runtime.context(config.coordinator_server),
            runtime=runtime,
            registry=registry,
            owner_fn=routing.owner,
            board=board,
            engine_kind=opts.kind,
            config=config.coordinator_config,
            on_complete=_forget,
            planner=planner,
            journal=journal,
            routing=routing,
        )
        runtime.register_coordinator(coordinator.on_message)

        # The admission scheduler sits between Cluster.submit and the
        # coordinator; with the default (transparent) SchedulerConfig every
        # admitted traversal launches synchronously inside submit().
        scheduler = TraversalScheduler.for_cluster(
            runtime, coordinator, opts.scheduler, config.scheduler_config
        )

        # Online shard rebalancing (repro.rebalance): the migrator moves
        # vertex ranges between servers while traversals run, pacing its copy
        # traffic through the scheduler as the low-priority tenant above.
        migrator = ShardMigrator(
            runtime,
            routing,
            servers,
            scheduler,
            coordinator,
            board,
            config.migration,
            graph=graph,
            partition_vids=[set(assignment[s]) for s in range(config.nservers)],
            journal=journal,
            forget=_forget,
            host=config.coordinator_server,
        )
        migration_wire["migrator"] = migrator

        # Observability wiring: spans timestamp off the runtime clock, and a
        # pull collector turns the push-free layers (storage, network) into
        # gauges at snapshot time. Collectors must SET, never increment —
        # snapshot() may run any number of times.
        obs = board.obs
        if hasattr(runtime, "sim"):
            obs.bind_clock(lambda: runtime.sim.now)
        else:
            ctx0 = runtime.context(0)
            obs.bind_clock(ctx0.now)
        runtime.bind_metrics(obs.metrics)
        obs.trace.configure(
            enabled=config.trace_enabled, max_events=config.trace_max_events
        )
        runtime.bind_trace(obs.trace)

        # Fault machinery: crashes clear engine memory (LSM storage keeps its
        # state inside GraphStore, untouched); the reliable channel interposes
        # on deliver() and feeds ack-exhaustion back as crash suspicion.
        runtime.add_crash_listener(lambda s: servers[s].engine.crash())
        if config.fault_plan is not None:
            runtime.install_faults(config.fault_plan)
        if config.reliable:
            reliable_cfg = config.reliable_config
            if reliable_cfg is None and config.runtime == "threaded":
                # Wall-clock timers have ~millisecond resolution, so the
                # virtual-seconds ack timeout must be large enough (after
                # time_scale) that a real ack round trip beats the retry
                # timer — otherwise every frame retries to exhaustion.
                reliable_cfg = ReliableConfig(ack_timeout=0.5)
            channel = ReliableChannel(
                runtime,
                config=reliable_cfg,
                metrics=obs.metrics,
                spans=obs.spans,
                trace=obs.trace,
                seed=config.fault_plan.seed if config.fault_plan is not None else 0,
            )
            runtime.install_channel(channel)

            def _suspect(src: ServerId, dst: ServerId, payload) -> None:
                if dst == COORDINATOR:
                    return
                with runtime.exclusive(config.coordinator_server):
                    coordinator.on_suspect(dst)

            channel.on_delivery_failure = _suspect

        # Crash recovery for the control plane: with a journal configured,
        # a coordinator-host crash wipes coordinator+scheduler state and the
        # supervisor rebuilds both from the journal on recovery.
        supervisor: Optional[RecoverySupervisor] = None
        if journal is not None:
            supervisor = RecoverySupervisor(
                runtime, coordinator, scheduler, journal, channel=channel,
                migrator=migrator,
            )

        # The live telemetry plane (DESIGN.md §14). Wired LAST so its
        # terminal wrapper is outermost: its logic runs before the
        # scheduler/supervisor inner chain pops the QoS entry, so tenant and
        # admission clock are still readable at terminal time.
        if config.telemetry_enabled:
            slo = SLOTracker(
                config.slo_config, metrics=obs.metrics, trace=obs.trace
            )
            telemetry = TelemetryPlane(
                config.telemetry_config,
                slo=slo,
                thread_safe=(config.runtime == "threaded"),
            )
            if hasattr(runtime, "sim"):
                # simulated runtime: pull-based windowing — rollup windows
                # close at kernel clock-boundary crossings by diffing the
                # registry, so the engines' record paths pay nothing. Only
                # the SLO rejection feed keeps a (name-filtered) watcher.
                sim = runtime.sim
                telemetry.bind_clock(lambda: sim.now)
                telemetry.install_pull(sim, obs.metrics)
                obs.metrics.bind_watcher(
                    telemetry.ingest, names={"sched.rejected"}
                )
            else:
                # threaded runtime: no virtual clock to hook, so every
                # recording is binned per event via the full watcher
                telemetry.bind_clock(runtime.context(0).now)
                obs.metrics.bind_watcher(telemetry.ingest)
            telemetry.bind_recorder(obs.trace)
            obs.telemetry = telemetry
            obs.slo = slo
            if config.trace_sampling is not None:
                obs.trace.configure(sampling=config.trace_sampling)

            inner_terminal = coordinator.on_terminal

            def _telemetry_terminal(travel_id: TravelId, status: str) -> None:
                telemetry.on_terminal(
                    travel_id, status, entry=scheduler.entry_for(travel_id)
                )
                if inner_terminal is not None:
                    inner_terminal(travel_id, status)

            coordinator.on_terminal = _telemetry_terminal

            def _on_crash(server: ServerId) -> None:
                if server == config.coordinator_server:
                    telemetry.on_coordinator_crash()

            runtime.add_crash_listener(_on_crash)

        def _collect_storage(metrics) -> None:
            for server in servers:
                for name, value in server.storage_metrics().items():
                    metrics.set_gauge(f"storage.{name}", value, server=server.server_id)
            metrics.set_gauge("runtime.messages_sent", runtime.messages_sent)
            metrics.set_gauge("runtime.bytes_sent", runtime.bytes_sent)
            metrics.set_gauge("runtime.messages_dropped", runtime.messages_dropped)
            metrics.set_gauge("sched.queue_depth", scheduler.queue_depth)
            metrics.set_gauge("sched.inflight", scheduler.inflight_count)
            metrics.set_gauge("coord.epoch", coordinator.epoch)
            metrics.set_gauge("rebalance.routing_version", routing.version)
            metrics.set_gauge("rebalance.active", migrator.active_count)
            metrics.set_gauge("rebalance.dual_vertices", routing.dual_count)
            metrics.set_gauge("rebalance.overrides", routing.override_count)
            if journal is not None:
                metrics.set_gauge("journal.size_bytes", journal.size_bytes())
                metrics.set_gauge("journal.records", journal.records_appended)
                metrics.set_gauge("journal.bytes_appended", journal.bytes_appended)
                metrics.set_gauge("journal.checkpoints", journal.checkpoints_written)

        obs.metrics.add_collector(_collect_storage)
        if config.interference is not None and hasattr(config.interference, "bind_metrics"):
            config.interference.bind_metrics(obs.metrics)
        return cls(
            config, runtime, partitioner, servers, coordinator, registry, board,
            scheduler, supervisor, routing, migrator,
        )

    # -- client API (paper §IV-A: submit the whole GTravel instance) ------------

    def _compile(
        self, query: Union[GTravel, TraversalPlan, CompositePlan]
    ) -> Union[TraversalPlan, CompositePlan]:
        return query.compile() if isinstance(query, GTravel) else query

    def submit(
        self,
        query: Union[GTravel, TraversalPlan, CompositePlan],
        *,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
    ):
        """Asynchronously submit; returns (travel_id, completion event).

        ``tenant`` attributes the submission for fair queueing and quotas,
        ``priority`` overrides the priority policy's default class, and
        ``deadline`` (seconds from admission) arms cancellation: if the
        traversal has not completed by then it fails with
        :class:`~repro.errors.TraversalCancelled`. Raises
        :class:`~repro.errors.AdmissionRejected` when the scheduler's
        pending queue is full.
        """
        with self.runtime.exclusive(self.config.coordinator_server):
            travel_id, event = self.scheduler.submit(
                self._compile(query),
                tenant=tenant,
                priority=priority,
                deadline=deadline,
            )
            if self.supervisor is not None:
                entry = self.scheduler.entry_for(travel_id)
                if entry is not None:  # still live (not already terminal)
                    self.supervisor.note_submission(
                        travel_id,
                        event,
                        tenant=entry.tenant,
                        priority=entry.priority,
                        deadline_abs=entry.deadline,
                        admit_time=entry.admit_time,
                    )
            return travel_id, event

    def cancel(self, travel_id: TravelId, reason: str = "cancelled") -> bool:
        """Cancel a queued or running traversal; True if anything happened."""
        with self.runtime.exclusive(self.config.coordinator_server):
            return self.scheduler.cancel(travel_id, reason)

    def traverse(
        self,
        query: Union[GTravel, TraversalPlan, CompositePlan],
        *,
        cold: bool = True,
        limit: Optional[float] = None,
    ) -> TraversalOutcome:
        """Run one traversal to completion and return its outcome.

        ``cold=True`` drops every server's block cache first, matching the
        paper's cold-start methodology.
        """
        if cold:
            self.cold_start()
        _, event = self.submit(query)
        return self.runtime.run_until_complete(event, limit=limit)

    def traverse_many(
        self,
        queries: list[Union[GTravel, TraversalPlan, CompositePlan]],
        *,
        cold: bool = True,
        qos: Optional[list[dict]] = None,
    ) -> list[TraversalOutcome]:
        """Run several traversals concurrently (the paper's online workload:
        'as an online database system, our system needs to support concurrent
        graph traversals').

        ``qos`` optionally carries one per-query dict of :meth:`submit`
        keyword arguments (``tenant`` / ``priority`` / ``deadline``).
        """
        if cold:
            self.cold_start()
        specs = qos if qos is not None else [{} for _ in queries]
        events = [self.submit(q, **spec)[1] for q, spec in zip(queries, specs)]
        outcomes = []
        for event in events:
            outcomes.append(self.runtime.run_until_complete(event))
        return outcomes

    def progress(self, travel_id: TravelId) -> dict[int, int]:
        """Outstanding work per step for an in-flight traversal (§IV-C)."""
        with self.runtime.exclusive(self.config.coordinator_server):
            return self.coordinator.progress(travel_id)

    # -- elastic scale-out (repro.rebalance) ---------------------------------

    def rebalance(
        self,
        src: ServerId,
        dst: ServerId,
        *,
        vids=None,
        key_range: Optional[tuple[int, int]] = None,
        wait: bool = True,
    ):
        """Migrate a vertex set (or ``[lo, hi)`` key range) from ``src`` to
        ``dst`` while traversals run. With ``wait=True`` (default) the
        simulation runs until the migration is terminal and the
        :class:`~repro.rebalance.migrate.MigrationState` is returned —
        check ``state.phase`` (``done`` / ``aborted``). With ``wait=False``
        returns ``(mid, completion event)`` immediately."""
        with self.runtime.exclusive(self.config.coordinator_server):
            mid, event = self.migrator.migrate(
                src, dst, vids=vids, key_range=key_range
            )
        if not wait:
            return mid, event
        return self.runtime.run_until_complete(event)

    def start_rebalancer(
        self, config: Optional[RebalancerConfig] = None
    ) -> Rebalancer:
        """Start the closed-loop rebalancer: it samples the hot-shard report
        every ``config.interval`` seconds and migrates ranges off flagged
        servers. Requires the telemetry plane."""
        if self.board.obs.telemetry is None:
            raise TelemetryDisabled("start_rebalancer()")
        telemetry = self.board.obs.telemetry
        nservers = self.config.nservers

        # lock-free report/load sampling: the rebalancer loop runs *inside*
        # the coordinator's context, where taking runtime.exclusive would
        # self-deadlock on the threaded runtime (same discipline as the
        # coordinator's watchdog)
        def report_fn():
            return telemetry.hot_shards(
                self.coordinator.inflight_by_server(), nservers
            )

        def loads_fn():
            return {
                s.server_id: sorted(s.store.local_vertices())
                for s in self.servers
            }

        rebalancer = Rebalancer(self.migrator, report_fn, loads_fn, config)
        self.rebalancer = rebalancer
        rebalancer.start()
        return rebalancer

    def stop_rebalancer(self) -> None:
        if self.rebalancer is not None:
            self.rebalancer.stop()

    # -- observability -------------------------------------------------------------

    @property
    def obs(self):
        """The cluster-wide :class:`~repro.obs.Observability` instance."""
        return self.board.obs

    @property
    def telemetry(self):
        """The live :class:`~repro.obs.telemetry.TelemetryPlane`, or None
        when built with ``telemetry_enabled=False``."""
        return self.board.obs.telemetry

    @property
    def slo(self):
        """The per-tenant :class:`~repro.obs.slo.SLOTracker`, or None."""
        return self.board.obs.slo

    def metrics_snapshot(self) -> dict:
        """Deterministic metrics snapshot (counters, gauges, histograms)."""
        return self.board.obs.metrics.snapshot()

    def rollups(self) -> dict:
        """The telemetry plane's windowed rollup payload (empty-shaped
        payload when telemetry is disabled)."""
        telemetry = self.board.obs.telemetry
        if telemetry is None:
            return {"window_width": 0.0, "max_windows": 0,
                    "counters": {}, "gauges": {}, "histograms": {}}
        return telemetry.rollups()

    def alert_log(self) -> list:
        """Every SLO burn-rate alert transition so far, in order."""
        slo = self.board.obs.slo
        return [] if slo is None else slo.alert_log_payload()

    def hot_shard_report(self):
        """Ranked per-server load skew (rate + in-flight) right now.

        Raises the typed :class:`~repro.errors.TelemetryDisabled` when the
        cluster was built with ``telemetry_enabled=False``."""
        telemetry = self.board.obs.telemetry
        if telemetry is None:
            raise TelemetryDisabled("hot_shard_report()")
        with self.runtime.exclusive(self.config.coordinator_server):
            inflight = self.coordinator.inflight_by_server()
        return telemetry.hot_shards(inflight, self.config.nservers)

    def health(self) -> dict:
        """The JSON health/readiness document: per-server liveness,
        coordinator epoch, scheduler depths, firing SLO alerts."""
        from repro.obs.exporter import health_payload

        slo = self.board.obs.slo
        journal = self.coordinator.journal
        journal_doc = None
        if journal is not None:
            journal_doc = {
                "size_bytes": journal.size_bytes(),
                "records": journal.records_appended,
            }
        return health_payload(
            epoch=self.coordinator.epoch,
            servers_up=[
                not self.runtime.is_down(s)
                for s in range(self.config.nservers)
            ],
            coordinator_server=self.config.coordinator_server,
            queue_depth=self.scheduler.queue_depth,
            inflight=self.scheduler.inflight_count,
            policy=self.scheduler.policy.name,
            active_alerts=[] if slo is None else slo.active_alerts(),
            journal=journal_doc,
        )

    def health_json(self) -> str:
        """Canonical byte-stable health document."""
        import json

        return json.dumps(self.health(), sort_keys=True, separators=(",", ":"))

    def openmetrics(self) -> str:
        """One OpenMetrics text exposition: the metrics snapshot plus the
        latest-window rollups and health gauges."""
        from repro.obs.exporter import render_openmetrics

        telemetry = self.board.obs.telemetry
        return render_openmetrics(
            self.metrics_snapshot(),
            rollups=None if telemetry is None else telemetry.rollups(),
            health=self.health(),
        )

    def span_timeline(self) -> list[dict]:
        """All recorded traversal spans, ordered by start time."""
        return self.board.obs.spans.timeline()

    def export_observability(self, path):
        """Write the canonical metrics+spans+trace payload to ``path``."""
        from repro.obs.export import write_observability

        return write_observability(
            path, self.board.obs.metrics, self.board.obs.spans, self.board.obs.trace
        )

    # -- tracing / EXPLAIN / PROFILE ------------------------------------------------

    def enable_tracing(self, max_events: Optional[int] = None) -> None:
        """Turn the flight recorder on (equivalent to building the cluster
        with ``trace_enabled=True``)."""
        self.board.obs.trace.configure(enabled=True, max_events=max_events)

    def trace_dag(self, travel_id: TravelId):
        """Reconstruct one traversal's execution DAG from recorded events.

        Raises :class:`~repro.errors.TraceError` on orphan executions or
        cycles (degraded to warnings when the ring buffer truncated).
        """
        from repro.obs.trace import assemble_trace

        recorder = self.board.obs.trace
        return assemble_trace(
            recorder.events(), travel_id, dropped=recorder.dropped_for(travel_id)
        )

    def trace_payload(self, *, label: Optional[str] = None) -> dict:
        """Every recorded traversal in Chrome ``trace_event`` format
        (open in chrome://tracing or https://ui.perfetto.dev)."""
        from repro.obs.trace import chrome_trace

        return chrome_trace(self.board.obs.trace, label=label)

    def explain(self, query: Union[GTravel, TraversalPlan, CompositePlan]) -> dict:
        """EXPLAIN against *this* cluster's planner: when a planner mode is
        configured, the document shows original vs. optimized plan with the
        applied rewrites and (in ``cost`` mode) per-level cost estimates;
        with the planner off it is the plain plan document. Composite plans
        (repeat/union/back) get the operator-tree document with per-operator
        cost estimates in ``cost`` mode; child plans are (re)planned
        individually at dispatch, so rewrites never cross operator scopes.
        No traversal runs."""
        from repro.obs.explain import explain_composite, explain_plan, explain_planned

        plan = self._compile(query)
        if isinstance(plan, CompositePlan):
            return explain_composite(plan, planner=self.coordinator.planner)
        if self.coordinator.planner is not None:
            return explain_planned(self.coordinator.planner.plan(plan))
        return explain_plan(plan)

    def profile(
        self,
        query: Union[GTravel, TraversalPlan, CompositePlan],
        *,
        cold: bool = True,
        limit: Optional[float] = None,
    ):
        """Run ``query`` with the flight recorder on and return
        ``(outcome, ProfileReport)`` — the Gremlin-style ``profile()`` step.

        The report carries per-step fan-out, visit/cache attribution,
        per-server execution counts and skew, wall-clock per step on the
        virtual clock, and the full reconstructed trace — plus, when a
        planner is configured, the rewrite audit trail and estimated-vs-
        actual cardinality rows. Deterministic per (seed, config) on the
        simulated runtime.
        """
        from repro.errors import TraversalFailed
        from repro.obs.explain import profile_traversal

        self.enable_tracing()
        plan = self._compile(query)
        if isinstance(plan, CompositePlan):
            # Composite parents fan out into per-child linear traversals; each
            # child is profilable on its own, but the parent has no single
            # step timeline to attribute. Use explain() for the operator tree.
            raise UnsupportedProfileTarget(
                kind="composite",
                hint="use explain() for the operator tree, or profile the "
                "child plans individually",
            )
        # re-planning here is safe: the planner is pure, so this PlannedQuery
        # matches the one the coordinator derives at submit time
        planned = (
            self.coordinator.planner.plan(plan)
            if self.coordinator.planner is not None
            else None
        )
        # tail sampling must not sample out the profile's own traversal
        recorder = self.board.obs.trace
        saved_sampling = recorder.sampling
        recorder.configure(sampling=None)
        try:
            outcome = self.traverse(plan, cold=cold, limit=limit)
        except TraversalFailed as err:
            dag = self.trace_dag(err.travel_id)
            report = profile_traversal(
                dag, plan, spans=self.board.obs.spans, planned=planned
            )
            return None, report
        finally:
            recorder.configure(sampling=saved_sampling)
        travel_id = outcome.result.travel_id
        dag = self.trace_dag(travel_id)
        report = profile_traversal(
            dag,
            plan,
            spans=self.board.obs.spans,
            elapsed=outcome.stats.elapsed,
            result_count=len(outcome.result.vertices),
            queue_wait=self._queue_wait(travel_id),
            planned=planned,
        )
        return outcome, report

    def _queue_wait(self, travel_id: TravelId) -> Optional[float]:
        """Admission-queue wait from the flight recorder (sched.submit →
        sched.launch), or None if either event was not captured."""
        submitted = launched = None
        for ev in self.board.obs.trace.events_for(travel_id):
            if ev.kind == "sched.submit" and submitted is None:
                submitted = ev.clock
            elif ev.kind == "sched.launch" and launched is None:
                launched = ev.clock
        if submitted is None or launched is None:
            return None
        return launched - submitted

    # -- maintenance --------------------------------------------------------------

    def cold_start(self) -> None:
        for server in self.servers:
            server.store.cold_start()

    @property
    def now(self) -> float:
        if hasattr(self.runtime, "sim"):
            return self.runtime.sim.now
        return self.runtime.context(0).now()

    def shutdown(self) -> None:
        """Release runtime resources (worker threads on the threaded runtime)."""
        self.runtime.shutdown()

    def server_loads(self) -> list[int]:
        """Vertices per server (partition skew introspection)."""
        return [s.vertex_count for s in self.servers]

    # -- live updates (the metadata store ingests production data in real time) ----

    def ingest_vertex(self, vid: int, vtype: str, props: Optional[dict] = None) -> None:
        """Insert a vertex through the owning server's storage engine.

        Ownership is resolved through the routing table, so ingest lands on
        the post-migration owner of a rebalanced key."""
        owner = self.routing.owner(vid)
        self.servers[owner].store.insert_vertex(vid, vtype, dict(props or {}))

    def ingest_edge(
        self, src: int, dst: int, label: str, props: Optional[dict] = None
    ) -> None:
        """Insert an out-edge on the source vertex's owning server."""
        owner = self.routing.owner(src)
        if not self.servers[owner].store.has_vertex(src):
            raise SimulationError(f"edge source {src} has not been ingested")
        self.servers[owner].store.insert_edge(src, dst, label, dict(props or {}))
