"""External-interference injection (paper §VII-C).

The paper emulates transient stragglers "by inserting fixed (50 ms) delay
into individual vertex data accesses. Each time, multiple delays (500 times
...) were created to emulate a straggler that lasts a certain period of
time", with three stragglers placed on three selected servers at steps 1, 3
and 7, chosen round-robin.

:class:`ExternalInterference` reproduces that: a budget of delayed accesses
per (server, traversal step). Being deterministic, both engines face exactly
the same injected delays, as the paper requires for fairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ids import ServerId


@dataclass
class StragglerSpec:
    """One transient straggler: ``count`` accesses on ``server`` during
    traversal step ``level`` are slowed by ``delay`` seconds each."""

    server: ServerId
    level: int
    delay: float = 0.050
    count: int = 500


class ExternalInterference:
    """An :class:`~repro.runtime.base.InterferencePolicy` built from specs."""

    def __init__(self, specs: Sequence[StragglerSpec]):
        self._budget: dict[tuple[ServerId, int], list] = {}
        self.specs = list(specs)
        for spec in specs:
            key = (spec.server, spec.level)
            entry = self._budget.setdefault(key, [0.0, 0])
            entry[0] = spec.delay
            entry[1] += spec.count
        self.injected = 0
        self._metrics = None

    def bind_metrics(self, metrics) -> None:
        """Report each injected delay to the cluster's metrics registry."""
        self._metrics = metrics

    def delay(self, server: ServerId, level: Optional[int]) -> float:
        if level is None:
            return 0.0
        entry = self._budget.get((server, level))
        if entry is None or entry[1] <= 0:
            return 0.0
        entry[1] -= 1
        self.injected += 1
        if self._metrics is not None:
            self._metrics.count(
                "straggler.injected_delays", server=server, level=level
            )
        return entry[0]

    def remaining(self) -> int:
        return sum(entry[1] for entry in self._budget.values())


def paper_interference(
    servers: Sequence[ServerId] = (0, 1, 2),
    levels: Sequence[int] = (1, 3, 7),
    delay: float = 0.050,
    count: int = 500,
) -> ExternalInterference:
    """The Fig. 11 configuration: three stragglers on three selected servers
    at steps 1, 3 and 7, one server per step, chosen round-robin."""
    specs = [
        StragglerSpec(server=servers[i % len(servers)], level=level, delay=delay, count=count)
        for i, level in enumerate(levels)
    ]
    return ExternalInterference(specs)
