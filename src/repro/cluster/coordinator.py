"""The coordinator: traversal submission, tracing, completion, and restart.

The client ships a compiled plan to one selected backend server which acts as
the coordinator for that traversal (paper §IV-A, Fig. 2b). For asynchronous
engines the coordinator hosts the execution tracker (§IV-C); for the
synchronous baseline it is the barrier controller (§VI). Either way it
assembles the returned vertex sets, stamps the elapsed time, and resolves
the client's completion event.

Failure handling follows the paper: an execution that was created but does
not terminate within a timeout marks the traversal failed, and "this failure
will simply cause the traversal to be restarted" — up to ``max_restarts``
attempts, after which the client's event fails with
:class:`~repro.errors.TraversalFailed`.

The coordinator itself is crash-recoverable (DESIGN.md §13): with a
:class:`~repro.cluster.journal.TraversalJournal` attached, every state
transition is journaled *before* its side effects, ``on_host_crash`` models
losing all in-memory travel state, and ``begin_epoch`` /
``resume_travel`` / ``resume_composite`` rebuild the coordinator from a
journal replay under a new epoch. Every outbound message is stamped with
the current epoch and :meth:`on_message` fences reports carrying an older
one, so a recovered coordinator can never be confused by its dead
predecessor's in-flight traffic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.engine.base import (
    EngineKind,
    TraversalOutcome,
    TraversalResult,
    TraversalStats,
)
from repro.cluster.journal import TraversalJournal
from repro.engine.registry import TravelEntry, TravelRegistry
from repro.engine.statistics import StatsBoard
from repro.engine.tracing import ExecTracker, SyncBarrierState
from repro.errors import TraversalCancelled, TraversalError, TraversalFailed
from repro.ids import COORDINATOR, IdAllocator, ServerId, TravelId, VertexId
from repro.lang.composite import CompositePlan, composite_program
from repro.lang.optimizer import PlannedQuery, QueryPlanner
from repro.lang.plan import TraversalPlan, reduce_aggregate
from repro.obs.trace import sync_exec_id
from repro.net.message import (
    ExecStatus,
    Message,
    ReplayExec,
    ResultReport,
    SyncBatch,
    SyncStartStep,
    SyncStepDone,
    TraverseRequest,
)
from repro.runtime.base import Runtime, ServerContext


@dataclass(frozen=True)
class CoordinatorConfig:
    """Timeout, restart, and control-plane cost policy."""

    exec_timeout: float = 60.0  # idle seconds before declaring failure
    watch_interval: float = 5.0
    max_restarts: int = 2
    #: fine-grained recovery (the paper's future work): before falling back
    #: to a full restart, ask the creators of the lost executions to replay
    #: their original dispatches. Receiver-side (travel, step, vertex)
    #: deduplication makes replays idempotent. Async engines only.
    fine_grained_recovery: bool = False
    max_replay_rounds: int = 2
    #: buffered result pipeline (the paper's future work): stream result
    #: chunks to the client while the traversal is still running, instead of
    #: one bulk reply at the end. Pays off when the return set is large.
    stream_results: bool = False
    stream_chunk_vertices: int = 1024
    #: per-control-message handling time at the barrier controller. The
    #: synchronous engine's coordinator must receive N step-done reports and
    #: send N step-start orders *on the critical path* of every step; the
    #: asynchronous engines' status tracing is processed off the critical
    #: path, so only sync barriers pay this.
    control_overhead_per_msg: float = 15e-6


@dataclass
class ActiveTravel:
    """Coordinator-side state of one in-flight traversal."""

    travel_id: TravelId
    entry: TravelEntry
    submit_time: float
    client_event: object
    tracker: Union[ExecTracker, SyncBarrierState]
    returned: dict[int, set[VertexId]] = field(default_factory=dict)
    #: final-level group keys reported by the servers (``group_count`` plans)
    groups: dict[VertexId, Any] = field(default_factory=dict)
    done: bool = False
    #: coordinator-side replay buffer for its own initial dispatches
    initial_sent: dict[int, tuple[ServerId, object]] = field(default_factory=dict)
    replay_rounds: int = 0
    #: buffered result pipeline state: vertices not yet streamed, vertices
    #: already on the wire, and the count of chunks shipped.
    stream_backlog: dict[int, set[VertexId]] = field(default_factory=dict)
    streamed: dict[int, set[VertexId]] = field(default_factory=dict)
    stream_chunks: int = 0
    streamer_busy: bool = False
    stream_done_time: float = 0.0
    #: the planner's audit trail; None when the traversal runs as written
    planned: Optional[PlannedQuery] = None
    #: parent composite travel id when this is an orchestrated child; its
    #: client_event is then coordinator-internal, not client-facing
    child_of: Optional[TravelId] = None
    #: journal progress-delta batching (flushed every ~32 fresh reports)
    pend_statuses: int = 0
    pend_results: int = 0

    @property
    def plan(self) -> TraversalPlan:
        """The *executed* plan (post-rewrite when a planner is active)."""
        return self.entry.plan


@dataclass
class CompositeTravel:
    """Coordinator-side state of one composite (repeat/union/back) traversal.

    The coordinator spawns an orchestrator process that drives the shared
    :func:`~repro.lang.composite.composite_program`; every child plan the
    program yields runs as an ordinary linear traversal, so the distributed
    machinery (tracking, restarts, caches) is reused unchanged.
    """

    travel_id: TravelId
    plan: CompositePlan
    client_event: object
    submit_time: float
    stats: TraversalStats
    current_child: Optional[TravelId] = None
    children: int = 0
    done: bool = False


class Coordinator:
    """One coordinator actor per cluster (hosted on a backend server)."""

    def __init__(
        self,
        ctx: ServerContext,
        runtime: Runtime,
        registry: TravelRegistry,
        owner_fn: Callable[[VertexId], ServerId],
        board: StatsBoard,
        engine_kind: EngineKind,
        config: Optional[CoordinatorConfig] = None,
        on_complete: Optional[Callable[[TravelId], None]] = None,
        planner: Optional[QueryPlanner] = None,
        on_terminal: Optional[Callable[[TravelId, str], None]] = None,
        journal: Optional[TraversalJournal] = None,
        routing=None,
    ):
        self.ctx = ctx
        self.runtime = runtime
        self.registry = registry
        self.owner_fn = owner_fn
        self.board = board
        self.metrics = board.obs.metrics
        self.spans = board.obs.spans
        self.trace = board.obs.trace
        self.engine_kind = engine_kind
        self.config = config or CoordinatorConfig()
        self.on_complete = on_complete
        self.planner = planner
        #: scheduler hook: called with (travel_id, "ok"|"failed"|"cancelled")
        #: whenever a launched traversal reaches a terminal state
        self.on_terminal = on_terminal
        #: durable WAL of state transitions; None runs journal-free (legacy)
        self.journal = journal
        #: versioned routing table (repro.rebalance); when set, level-0
        #: dispatch consults ``routing.owners`` so vertices inside a
        #: migration's double-routing window go to *both* owners
        self.routing = routing
        #: coordinator incarnation; bumped by ``begin_epoch`` on recovery and
        #: stamped on every outbound message for fencing
        self.epoch = 0
        self._active: dict[TravelId, ActiveTravel] = {}
        self._composites: dict[TravelId, CompositeTravel] = {}
        self._travel_ids = IdAllocator(1)
        self._next_exec = IdAllocator((ctx.nservers + 1) << 32)

    @property
    def is_sync(self) -> bool:
        return self.engine_kind is EngineKind.SYNC

    # -- submission --------------------------------------------------------

    def allocate_travel_id(self) -> TravelId:
        """Hand out the next travel id (the scheduler allocates at admission
        so a still-queued traversal is already addressable for cancel)."""
        return self._travel_ids.next()

    def submit(
        self,
        plan: TraversalPlan,
        *,
        travel_id: Optional[TravelId] = None,
        client_event: Optional[object] = None,
        submit_time: Optional[float] = None,
        _child_of: Optional[TravelId] = None,
    ):
        """Register and launch a traversal; returns (travel_id, event).

        The coordinator plans *once*: when a planner is configured, the
        rewritten plan is what gets registered and shipped to every server
        (restarts re-dispatch the same executed plan — no replanning
        mid-traversal).

        The scheduler pre-allocates ``travel_id``/``client_event`` at
        admission and passes the admission time as ``submit_time`` so the
        reported elapsed time includes queue wait; direct callers omit all
        three and get the legacy launch-immediately behaviour."""
        if isinstance(plan, CompositePlan):
            return self._submit_composite(
                plan,
                travel_id=travel_id,
                client_event=client_event,
                submit_time=submit_time,
            )
        if travel_id is None:
            travel_id = self._travel_ids.next()
        planned: Optional[PlannedQuery] = None
        executed = plan
        if self.planner is not None:
            planned = self.planner.plan(plan)
            executed = planned.executed
            if planned.mode != "off":
                self.metrics.count("planner.planned")
                for rewrite in planned.rewrites:
                    self.metrics.count(f"planner.rewrite.{rewrite.name}")
        entry = self.registry.register(travel_id, executed)
        entry.epoch = self.epoch
        event = (
            client_event
            if client_event is not None
            else self.runtime.completion_event()
        )
        tracker: Union[ExecTracker, SyncBarrierState]
        tracker = SyncBarrierState() if self.is_sync else ExecTracker()
        at = ActiveTravel(
            travel_id=travel_id,
            entry=entry,
            submit_time=self.ctx.now() if submit_time is None else submit_time,
            client_event=event,
            tracker=tracker,
            planned=planned,
            child_of=_child_of,
        )
        if self.journal is not None:
            # WAL discipline: the dispatch is durable before any of its
            # side effects (messages, tracker registration) can run.
            self.journal.append(
                "dispatch",
                tid=travel_id,
                plan=executed,
                attempt=entry.attempt,
                epoch=self.epoch,
                composite=False,
                child_of=_child_of,
                submit_time=at.submit_time,
                planned=planned,
            )
        self._active[travel_id] = at
        self.metrics.count("coord.submitted")
        self.spans.travel_span(
            travel_id, engine=self.engine_kind.value, steps=executed.final_level
        )
        self.trace.record(
            "travel.submit",
            travel_id=travel_id,
            server_id=self.ctx.server_id,
            engine=self.engine_kind.value,
            steps=executed.final_level,
            planner_mode=planned.mode if planned is not None else "off",
        )
        self._dispatch(at)
        self.ctx.spawn(self._watchdog(at), name=f"watchdog-{travel_id}")
        return travel_id, event

    def _dispatch(self, at: ActiveTravel) -> None:
        if self.is_sync:
            self._dispatch_sync(at)
        else:
            self._dispatch_async(at)

    def _source_groups(self, plan: TraversalPlan) -> dict[ServerId, list[VertexId]]:
        groups: dict[ServerId, list[VertexId]] = {}
        for vid in plan.source_ids or ():
            if self.routing is not None:
                # double-routing: a vertex mid-migration dispatches to both
                # its source and target; set-union result merging (async)
                # and per-vid batch merging (sync) dedupe downstream
                owners = self.routing.owners(vid)
            else:
                owners = (self.owner_fn(vid),)
            for server in owners:
                groups.setdefault(server, []).append(vid)
        return groups

    def _dispatch_async(self, at: ActiveTravel) -> None:
        plan, attempt = at.plan, at.entry.attempt
        tracker: ExecTracker = at.tracker  # type: ignore[assignment]
        tracker.attempt = attempt
        initial: list[tuple[int, ServerId, int]] = []
        if plan.source_ids is None:
            groups: list[tuple[ServerId, Optional[list]]] = [
                (server, None) for server in range(self.ctx.nservers)
            ]
        else:
            groups = sorted(self._source_groups(plan).items())  # type: ignore[assignment]
        for server, vids in groups:
            eid = self._next_exec.next()
            initial.append((eid, server, 0))
            self.trace.record(
                "exec.created",
                travel_id=at.travel_id,
                exec_id=eid,
                parent_exec_id=None,
                server_id=server,
                step=0,
                attempt=attempt,
                edge="dispatch",
            )
            request = TraverseRequest(
                at.travel_id,
                level=0,
                entries={} if vids is None else {vid: () for vid in vids},
                exec_id=eid,
                from_server=self.ctx.server_id,
                all_sources=vids is None,
                attempt=attempt,
            )
            at.initial_sent[eid] = (server, request)
            self._send(at.travel_id, server, request)
        tracker.register_initial(initial, self.ctx.now())
        self.board.stats(at.travel_id).executions += 0  # materialize stats early
        self._check_complete(at)  # zero-source traversals complete immediately

    def _dispatch_sync(self, at: ActiveTravel) -> None:
        plan, attempt = at.plan, at.entry.attempt
        barrier: SyncBarrierState = at.tracker  # type: ignore[assignment]
        barrier.attempt = attempt
        barrier.reset_for_level(0)
        barrier.last_activity = self.ctx.now()
        counts: Counter = Counter()
        if plan.source_ids is not None:
            for server, vids in sorted(self._source_groups(plan).items()):
                counts[server] += 1
                self._send(
                    at.travel_id,
                    server,
                    SyncBatch(
                        at.travel_id,
                        level=0,
                        entries={vid: () for vid in vids},
                        from_server=self.ctx.server_id,
                        attempt=attempt,
                    ),
                )
        for server in range(self.ctx.nservers):
            # The barrier release is the sync engine's root "creation": one
            # synthetic execution per (attempt, level, server) work unit.
            self.trace.record(
                "exec.created",
                travel_id=at.travel_id,
                exec_id=sync_exec_id(attempt, 0, server),
                parent_exec_id=None,
                server_id=server,
                step=0,
                attempt=attempt,
                edge="barrier",
            )
            self._send(
                at.travel_id,
                server,
                SyncStartStep(
                    at.travel_id,
                    level=0,
                    expect_batches=counts.get(server, 0),
                    all_sources=plan.source_ids is None,
                    attempt=attempt,
                ),
            )
        self.board.stats(at.travel_id).barrier_rounds += 1
        self.metrics.count("coord.barrier_rounds")

    # -- composite orchestration (repeat / union / back) ---------------------------

    def _submit_composite(
        self,
        plan: CompositePlan,
        *,
        travel_id: Optional[TravelId] = None,
        client_event: Optional[object] = None,
        submit_time: Optional[float] = None,
    ):
        """Register a composite traversal and spawn its orchestrator."""
        if travel_id is None:
            travel_id = self._travel_ids.next()
        event = (
            client_event
            if client_event is not None
            else self.runtime.completion_event()
        )
        ct = CompositeTravel(
            travel_id=travel_id,
            plan=plan,
            client_event=event,
            submit_time=self.ctx.now() if submit_time is None else submit_time,
            stats=TraversalStats(engine=self.engine_kind),
        )
        if self.journal is not None:
            self.journal.append(
                "dispatch",
                tid=travel_id,
                plan=plan,
                attempt=0,
                epoch=self.epoch,
                composite=True,
                child_of=None,
                submit_time=ct.submit_time,
                planned=None,
            )
        self._composites[travel_id] = ct
        self.metrics.count("coord.submitted")
        self.metrics.count("coord.composite_submitted")
        self.spans.travel_span(
            travel_id, engine=self.engine_kind.value, steps=plan.final_level
        )
        self.trace.record(
            "travel.submit",
            travel_id=travel_id,
            server_id=self.ctx.server_id,
            engine=self.engine_kind.value,
            steps=plan.final_level,
            planner_mode=self.planner.mode if self.planner is not None else "off",
            composite=True,
        )
        self.ctx.spawn(self._orchestrate(ct), name=f"composite-{travel_id}")
        return travel_id, event

    def _orchestrate(self, ct: CompositeTravel):
        """Drive the shared composite program as a coordinator process.

        Every child plan the program yields is submitted like an ordinary
        traversal (planned, tracked, restartable) and its result is sent
        back into the program. A failed child's completion event throws its
        exception into this process — both runtimes inject it — which fails
        the composite with the child's typed error.
        """
        reverse = bool(getattr(self.planner, "reverse_available", False))
        prog = composite_program(
            ct.plan, reverse_available=reverse, travel_id=ct.travel_id
        )
        try:
            try:
                child_plan = next(prog)
                while True:
                    if ct.done:
                        return  # cancelled/crashed before the next child launch
                    child_id, child_event = self.submit(
                        child_plan, _child_of=ct.travel_id
                    )
                    ct.current_child = child_id
                    ct.children += 1
                    outcome = yield self.ctx.wait(child_event)
                    ct.current_child = None
                    if ct.done:
                        return  # cancelled while the child was completing
                    _merge_child_stats(ct.stats, outcome.stats)
                    child_plan = prog.send(outcome.result)
            except StopIteration as stop:
                frontier, aggregate = stop.value
        except TraversalError as exc:
            ct.current_child = None
            if not ct.done:
                self._fail_composite(ct, self._rewrap(ct, exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            ct.current_child = None
            if not ct.done:
                self._fail_composite(
                    ct,
                    TraversalFailed(
                        ct.travel_id, f"composite orchestration error: {exc}"
                    ),
                )
            return
        if not ct.done:
            self._finish_composite(ct, frontier, aggregate)

    @staticmethod
    def _rewrap(ct: CompositeTravel, exc: TraversalError) -> TraversalError:
        """Surface child errors under the composite's travel id."""
        child_id = getattr(exc, "travel_id", ct.travel_id)
        if child_id == ct.travel_id:
            return exc
        if isinstance(exc, TraversalCancelled):
            return TraversalCancelled(
                ct.travel_id, f"child traversal {child_id} cancelled: {exc.reason}"
            )
        reason = getattr(exc, "reason", str(exc))
        return TraversalFailed(
            ct.travel_id, f"child traversal {child_id} failed: {reason}"
        )

    def _finish_composite(self, ct: CompositeTravel, frontier, aggregate) -> None:
        ct.done = True
        self._journal_terminal(ct.travel_id, "ok")
        del self._composites[ct.travel_id]
        stats = ct.stats
        network = self.runtime.network  # type: ignore[attr-defined]
        submit_hop = network.client_latency(512)
        total = len(frontier)
        reply_bytes = 64 + 8 * total
        if aggregate is not None:
            # aggregates reply with the reduced groups, not the vertex set
            reply_bytes = 64 + 16 * max(1, len(aggregate.groups))
        stats.elapsed = (
            self.ctx.now() - ct.submit_time
            + submit_hop + network.client_latency(reply_bytes)
        )
        self.metrics.count("coord.completed")
        self.metrics.observe(
            "travel.elapsed_seconds", stats.elapsed, engine=self.engine_kind.value
        )
        self.metrics.observe("travel.result_vertices", total)
        self.spans.finish_travel(
            ct.travel_id, status="ok", results=total, restarts=stats.restarts
        )
        self.trace.record(
            "travel.complete",
            travel_id=ct.travel_id,
            server_id=self.ctx.server_id,
            attempt=0,
            results=total,
            restarts=stats.restarts,
            children=ct.children,
        )
        result = TraversalResult(
            travel_id=ct.travel_id,
            returned={ct.plan.final_level: frozenset(frontier)},
            aggregate=aggregate,
        )
        if self.on_complete is not None:
            self.on_complete(ct.travel_id)
        ct.client_event.succeed(
            TraversalOutcome(
                result=result, stats=stats, plan=ct.plan, executed_plan=None
            )
        )
        if self.on_terminal is not None:
            self.on_terminal(ct.travel_id, "ok")

    def _fail_composite(self, ct: CompositeTravel, exc: TraversalError) -> None:
        ct.done = True
        self._composites.pop(ct.travel_id, None)
        cancelled = isinstance(exc, TraversalCancelled)
        status = "cancelled" if cancelled else "failed"
        self._journal_terminal(ct.travel_id, status)
        self.metrics.count("coord.cancelled" if cancelled else "coord.failed")
        self.spans.finish_travel(ct.travel_id, status=status)
        self.trace.record(
            "travel.cancelled" if cancelled else "travel.failed",
            travel_id=ct.travel_id,
            server_id=self.ctx.server_id,
            attempt=0,
            restarts=ct.stats.restarts,
            reason=str(exc),
        )
        if self.on_complete is not None:
            self.on_complete(ct.travel_id)
        ct.client_event.fail(exc)
        if self.on_terminal is not None:
            self.on_terminal(ct.travel_id, status)

    # -- message handling --------------------------------------------------------

    def on_message(self, msg: Message) -> None:
        msg_epoch = getattr(msg, "epoch", 0)
        if msg_epoch != self.epoch:
            # Epoch fence: a report stamped by (or derived from) a previous
            # coordinator incarnation. Its travel was either restarted under
            # a new attempt or cleaned up during recovery — dropping the
            # message is always safe and never loses information.
            self.metrics.count("coord.fenced")
            self.trace.record(
                "coord.fenced",
                travel_id=msg.travel_id,
                server_id=self.ctx.server_id,
                msg_epoch=msg_epoch,
                epoch=self.epoch,
            )
            return
        at = self._active.get(msg.travel_id)
        if at is None or at.done:
            return
        attempt = getattr(msg, "attempt", 0)
        if attempt != at.entry.attempt:
            return  # stale report from a restarted attempt
        if isinstance(msg, ExecStatus):
            tracker: ExecTracker = at.tracker  # type: ignore[assignment]
            fresh = tracker.on_status(msg, self.ctx.now())
            self.metrics.count("coord.exec_status", server=msg.server)
            self.trace.record(
                "coord.status",
                travel_id=msg.travel_id,
                exec_id=msg.exec_id,
                server_id=msg.server,
                step=msg.level,
                attempt=attempt,
                fresh=fresh,
                created=len(msg.created),
                results_sent=msg.results_sent,
            )
            if fresh:
                # Fresh terminations only: duplicate reports from replayed
                # executions must not inflate the executions statistic.
                self.board.execution(msg.travel_id)
                self._journal_progress(at, statuses=1)
            else:
                self.metrics.count("coord.duplicate_status")
            self._check_complete(at)
        elif isinstance(msg, ResultReport):
            self.metrics.count("coord.result_reports")
            self.trace.record(
                "coord.result",
                travel_id=msg.travel_id,
                step=msg.level,
                attempt=attempt,
                vertices=len(msg.vertices),
            )
            at.returned.setdefault(msg.level, set()).update(msg.vertices)
            if msg.groups:
                at.groups.update(msg.groups)
            if self.config.stream_results:
                self._stream_enqueue(at, msg.level, msg.vertices)
            if self.is_sync:
                barrier: SyncBarrierState = at.tracker  # type: ignore[assignment]
                barrier.results_received += 1
                barrier.last_activity = self.ctx.now()
            else:
                at.tracker.on_result(self.ctx.now())  # type: ignore[union-attr]
            self._journal_progress(at, results=1)
            self._check_complete(at)
        elif isinstance(msg, SyncStepDone):
            self.metrics.count("coord.step_done", server=msg.server)
            self._journal_progress(at, statuses=1)
            self._on_step_done(at, msg)
        else:  # pragma: no cover - protocol misuse guard
            raise TypeError(f"coordinator got unexpected {type(msg).__name__}")

    def _on_step_done(self, at: ActiveTravel, msg: SyncStepDone) -> None:
        barrier: SyncBarrierState = at.tracker  # type: ignore[assignment]
        if msg.level != barrier.level:
            return  # late duplicate; cannot happen with exact batch counts
        barrier.done_servers.add(msg.server)
        barrier.last_activity = self.ctx.now()
        for server, count in msg.sent_counts.items():
            barrier.next_expected[server] += count
        barrier.results_expected += msg.results_sent
        if len(barrier.done_servers) < self.ctx.nservers:
            return
        # a short-circuited final step never runs its own barrier round —
        # the level n-1 senders already shipped the final results
        if barrier.level >= at.plan.effective_final_level:
            barrier.finished_steps = True
            self._check_complete(at)
            return
        expected = barrier.next_expected
        next_level = barrier.level + 1
        barrier.reset_for_level(next_level)
        self.ctx.spawn(
            self._release_step(at, next_level, expected),
            name=f"barrier-{at.travel_id}-{next_level}",
        )
        self.board.stats(at.travel_id).barrier_rounds += 1
        self.metrics.count("coord.barrier_rounds")

    def _release_step(self, at: ActiveTravel, level: int, expected) -> None:
        """Release the next barrier after the controller's handling time:
        it just received N done-reports and must send N start orders."""
        overhead = 2 * self.ctx.nservers * self.config.control_overhead_per_msg
        if overhead > 0:
            yield self.ctx.sleep(overhead)
        attempt = at.entry.attempt
        if at.done or attempt != at.entry.attempt:
            return
        for server in range(self.ctx.nservers):
            self.trace.record(
                "exec.created",
                travel_id=at.travel_id,
                exec_id=sync_exec_id(attempt, level, server),
                parent_exec_id=None,
                server_id=server,
                step=level,
                attempt=attempt,
                edge="barrier",
            )
            self._send(
                at.travel_id,
                server,
                SyncStartStep(
                    at.travel_id,
                    level=level,
                    expect_batches=expected.get(server, 0),
                    attempt=attempt,
                ),
            )

    # -- buffered result pipeline (paper §IV-B future work) -----------------------

    def _stream_enqueue(self, at: ActiveTravel, level: int, vertices) -> None:
        """Queue freshly returned vertices for streaming to the client."""
        already = at.streamed.setdefault(level, set())
        backlog = at.stream_backlog.setdefault(level, set())
        fresh = set(vertices) - already - backlog
        if not fresh:
            return
        backlog.update(fresh)
        if not at.streamer_busy:
            at.streamer_busy = True
            self.ctx.spawn(self._streamer(at), name=f"stream-{at.travel_id}")

    def _streamer(self, at: ActiveTravel):
        """Ship result chunks to the client over the (slower) client link,
        overlapping with the still-running traversal."""
        network = self.runtime.network  # type: ignore[attr-defined]
        chunk_size = self.config.stream_chunk_vertices
        while True:
            level = next((l for l, s in at.stream_backlog.items() if s), None)
            if level is None:
                break
            backlog = at.stream_backlog[level]
            chunk = [backlog.pop() for _ in range(min(chunk_size, len(backlog)))]
            at.streamed[level].update(chunk)
            at.stream_chunks += 1
            yield self.ctx.sleep(network.client_latency(64 + 8 * len(chunk)))
        at.streamer_busy = False
        at.stream_done_time = self.ctx.now()
        self._check_complete(at)

    # -- completion ------------------------------------------------------------------

    def _check_complete(self, at: ActiveTravel) -> None:
        if at.done or not at.tracker.complete:
            return
        if self.config.stream_results and (
            at.streamer_busy or any(at.stream_backlog.values())
        ):
            return  # the streamer finalizes once the pipeline drains
        at.done = True
        self._journal_terminal(at.travel_id, "ok")
        stats = self.board.pop(at.travel_id)
        network = self.runtime.network  # type: ignore[attr-defined]
        submit_hop = network.client_latency(512)  # GTravel instance upload
        total_results = sum(len(v) for v in at.returned.values())
        if self.config.stream_results:
            # results already on the client; just the final status reply
            stats.elapsed = (
                max(self.ctx.now(), at.stream_done_time) - at.submit_time
                + submit_hop + network.client_latency(64)
            )
            stats.result_chunks = at.stream_chunks
        else:
            # bulk reply: the whole result set crosses the client link now
            stats.elapsed = (
                self.ctx.now() - at.submit_time
                + submit_hop + network.client_latency(64 + 8 * total_results)
            )
        self.metrics.count("coord.completed")
        self.metrics.observe(
            "travel.elapsed_seconds", stats.elapsed, engine=self.engine_kind.value
        )
        self.metrics.observe("travel.result_vertices", total_results)
        self.spans.finish_travel(
            at.travel_id, status="ok", results=total_results, restarts=stats.restarts
        )
        self.trace.record(
            "travel.complete",
            travel_id=at.travel_id,
            server_id=self.ctx.server_id,
            attempt=at.entry.attempt,
            results=total_results,
            restarts=stats.restarts,
        )
        # a reversed plan returns levels in its own numbering; map them back
        # to the original chain's levels before the client sees them
        returned: dict[int, set[VertexId]] = at.returned
        if at.planned is not None and at.planned.level_map:
            returned = {}
            for lvl, vids in at.returned.items():
                returned.setdefault(at.planned.map_level(lvl), set()).update(vids)
        aggregate = None
        spec = at.plan.aggregate
        if spec is not None:
            # reduce over the deduplicated final frontier — idempotent under
            # at-least-once report delivery and replayed executions
            final = frozenset(returned.get(at.plan.final_level, set()))
            aggregate = reduce_aggregate(spec, final, at.groups)
        result = TraversalResult(
            travel_id=at.travel_id,
            returned={lvl: frozenset(v) for lvl, v in returned.items()},
            aggregate=aggregate,
        )
        del self._active[at.travel_id]
        self.registry.unregister(at.travel_id)
        if self.on_complete is not None:
            self.on_complete(at.travel_id)
        original = at.planned.original if at.planned is not None else at.plan
        executed = at.plan if original is not at.plan else None
        at.client_event.succeed(
            TraversalOutcome(
                result=result, stats=stats, plan=original, executed_plan=executed
            )
        )
        if self.on_terminal is not None:
            self.on_terminal(at.travel_id, "ok")

    # -- cancellation (scheduler deadlines / explicit cancel) ---------------------------

    def cancel(self, travel_id: TravelId, reason: str = "cancelled") -> bool:
        """Cleanly cancel a running traversal; True if it was active.

        Unregistering from the travel registry is the whole termination
        protocol: every outstanding execution checks the registry on
        arrival and terminates itself as stale (the same machinery that
        quiesces superseded attempts after a restart), so no per-execution
        kill messages are needed. Coordinator state, engine caches, and
        channel dedup state are all dropped; the client's event fails with
        :class:`~repro.errors.TraversalCancelled`.
        """
        ct = self._composites.get(travel_id)
        if ct is not None:
            return self._cancel_composite(ct, reason)
        at = self._active.get(travel_id)
        if at is None or at.done:
            return False
        at.done = True
        self._journal_terminal(travel_id, "cancelled")
        del self._active[travel_id]
        self.registry.unregister(travel_id)
        self.board.pop(travel_id)
        self.metrics.count("coord.cancelled")
        self.spans.finish_travel(travel_id, status="cancelled")
        self.trace.record(
            "travel.cancelled",
            travel_id=travel_id,
            server_id=self.ctx.server_id,
            attempt=at.entry.attempt,
            reason=reason,
        )
        if self.on_complete is not None:
            self.on_complete(travel_id)
        at.client_event.fail(TraversalCancelled(travel_id, reason))
        if self.on_terminal is not None:
            self.on_terminal(travel_id, "cancelled")
        return True

    def _cancel_composite(self, ct: CompositeTravel, reason: str) -> bool:
        """Cancel a composite: mark it done (the orchestrator checks the
        flag after every resume and exits silently), cancel the in-flight
        child, and fail the client's event."""
        if ct.done:
            return False
        child = ct.current_child
        self._fail_composite(ct, TraversalCancelled(ct.travel_id, reason))
        if child is not None:
            self.cancel(child, reason=f"parent composite {ct.travel_id} cancelled")
        return True

    def inflight_by_server(self) -> dict[ServerId, int]:
        """Outstanding executions per backend server across every active
        traversal — the scheduler's backpressure signal. Async engines
        count tracker-pending executions at their target servers; the sync
        barrier counts one outstanding unit per server still owing its
        step-done report."""
        counts: dict[ServerId, int] = {}
        for at in self._active.values():
            if at.done:
                continue
            if self.is_sync:
                barrier: SyncBarrierState = at.tracker  # type: ignore[assignment]
                if not barrier.finished_steps:
                    for server in range(self.ctx.nservers):
                        if server not in barrier.done_servers:
                            counts[server] = counts.get(server, 0) + 1
            else:
                tracker: ExecTracker = at.tracker  # type: ignore[assignment]
                for target, _level, _origin in tracker.pending.values():
                    counts[target] = counts.get(target, 0) + 1
        return counts

    # -- failure detection and restart (paper §IV-C) ------------------------------------

    def _watchdog(self, at: ActiveTravel):
        restarts = 0
        while not at.done:
            yield self.ctx.sleep(self.config.watch_interval)
            if at.done:
                return
            idle = self.ctx.now() - at.tracker.last_activity
            if idle <= self.config.exec_timeout:
                continue
            self.metrics.count("coord.timeouts")
            if (
                self.config.fine_grained_recovery
                and not self.is_sync
                and at.replay_rounds < self.config.max_replay_rounds
                and self._replay_pending(at)
            ):
                continue
            if restarts >= self.config.max_restarts:
                at.done = True
                self._journal_terminal(at.travel_id, "failed")
                del self._active[at.travel_id]
                self.registry.unregister(at.travel_id)
                self.metrics.count("coord.failed")
                self.spans.finish_travel(at.travel_id, status="failed", restarts=restarts)
                self.trace.record(
                    "travel.failed",
                    travel_id=at.travel_id,
                    server_id=self.ctx.server_id,
                    attempt=at.entry.attempt,
                    restarts=restarts,
                    reason=f"no progress for {idle:.1f}s",
                )
                at.client_event.fail(
                    TraversalFailed(
                        at.travel_id,
                        f"no progress for {idle:.1f}s after {restarts} restarts",
                    )
                )
                if self.on_terminal is not None:
                    self.on_terminal(at.travel_id, "failed")
                return
            restarts += 1
            self._restart(at)

    def _replay_pending(self, at: ActiveTravel) -> bool:
        """Fine-grained recovery: re-request every lost execution from its
        creator instead of restarting the traversal. Returns False when any
        pending execution cannot be replayed (caller falls back to restart).
        """
        tracker: ExecTracker = at.tracker  # type: ignore[assignment]
        pending = list(tracker.pending.items())
        if not pending or tracker.early_terminated:
            # Orphan terminations mean creation reports were lost — replay
            # cannot reconstruct those registrations; restart instead.
            return False
        at.replay_rounds += 1
        self.metrics.count("coord.replay_rounds")
        stats = self.board.stats(at.travel_id)
        for eid, (_target, _level, origin) in pending:
            self._replay_one(at, stats, eid, origin)
        tracker.last_activity = self.ctx.now()  # give replays time to land
        return True

    def _replay_one(self, at: ActiveTravel, stats, eid: int, origin: ServerId) -> None:
        stats.replays += 1
        self.metrics.count("coord.replays")
        self.trace.record(
            "exec.replayed",
            travel_id=at.travel_id,
            exec_id=eid,
            server_id=origin,
            attempt=at.entry.attempt,
        )
        if origin == COORDINATOR:
            dst, request = at.initial_sent[eid]
            self._send(at.travel_id, dst, request)
        else:
            self._send(
                at.travel_id,
                origin,
                ReplayExec(at.travel_id, exec_id=eid, attempt=at.entry.attempt),
            )

    def on_suspect(self, server: ServerId) -> None:
        """Crash suspicion from the reliable transport (ack retries
        exhausted against ``server``). Instead of waiting out the watchdog
        timeout, immediately replay the executions pending *on the suspected
        server* from their creators' buffers (paper §IV-C's status trace
        tells us exactly which those are). Sync mode has no per-execution
        replay; the watchdog restart stays its only recovery.
        """
        self.metrics.count("coord.suspected", server=server)
        if self.is_sync or not self.config.fine_grained_recovery:
            return
        for at in list(self._active.values()):
            if at.done or at.replay_rounds >= self.config.max_replay_rounds:
                continue
            tracker: ExecTracker = at.tracker  # type: ignore[assignment]
            targeted = [
                (eid, origin)
                for eid, (target, _level, origin) in tracker.pending.items()
                if target == server
            ]
            if not targeted or tracker.early_terminated:
                continue
            at.replay_rounds += 1
            self.metrics.count("coord.replay_rounds")
            stats = self.board.stats(at.travel_id)
            for eid, origin in targeted:
                self._replay_one(at, stats, eid, origin)
            tracker.last_activity = self.ctx.now()

    def _restart(self, at: ActiveTravel) -> None:
        """Restart the traversal from scratch under a new attempt number."""
        attempt = self.registry.bump_attempt(at.travel_id)
        self.metrics.count("coord.restarts")
        self.spans.annotate(self.spans.travel_span(at.travel_id), restarts=attempt)
        self.trace.record(
            "travel.restart",
            travel_id=at.travel_id,
            server_id=self.ctx.server_id,
            attempt=attempt,
        )
        self.board.reset(at.travel_id)
        self.board.stats(at.travel_id).restarts = attempt
        at.returned.clear()
        at.groups.clear()
        at.initial_sent.clear()
        at.replay_rounds = 0
        # restarted traversals re-stream from scratch; the client discards
        # chunks from the failed attempt
        at.stream_backlog.clear()
        at.streamed.clear()
        at.stream_chunks = 0
        if self.is_sync:
            at.tracker = SyncBarrierState(attempt=attempt)
        else:
            at.tracker = ExecTracker(attempt=attempt)
        at.tracker.last_activity = self.ctx.now()
        if self.journal is not None:
            self.journal.append(
                "dispatch",
                tid=at.travel_id,
                plan=at.plan,
                attempt=attempt,
                epoch=self.epoch,
                composite=False,
                child_of=at.child_of,
                submit_time=at.submit_time,
                planned=at.planned,
            )
        self._dispatch(at)

    # -- progress (paper §IV-C) -----------------------------------------------------------

    def progress(self, travel_id: TravelId) -> dict[int, int]:
        """Outstanding executions per step (async) or the current barrier
        level (sync), for user-facing progress estimation."""
        ct = self._composites.get(travel_id)
        if ct is not None:
            if ct.current_child is not None:
                return self.progress(ct.current_child)
            return {}
        at = self._active.get(travel_id)
        if at is None:
            return {}
        if self.is_sync:
            barrier: SyncBarrierState = at.tracker  # type: ignore[assignment]
            return {barrier.level: self.ctx.nservers - len(barrier.done_servers)}
        return at.tracker.progress()  # type: ignore[union-attr]

    # -- coordinator crash recovery (DESIGN.md §13) -------------------------------------

    def on_host_crash(self) -> None:
        """The coordinator-hosting server crashed: every piece of in-memory
        travel state is lost. Composite orchestrators parked on a child's
        internal completion event are woken by failing that event (they
        observe ``done`` and exit silently — a real crash would simply have
        killed the process); watchdogs, streamers, and barrier releases exit
        through their ``done`` flags. Client-facing events are *not* failed:
        they are owned by the recovery supervisor, which either resumes the
        travel under the next epoch or fails it explicitly.
        """
        self.metrics.count("coord.crash")
        self.trace.record(
            "coord.crash",
            server_id=self.ctx.server_id,
            epoch=self.epoch,
            active=len(self._active),
            composites=len(self._composites),
        )
        for ct in list(self._composites.values()):
            ct.done = True
        for at in list(self._active.values()):
            was_done = at.done
            at.done = True
            if not was_done and at.child_of is not None:
                # internal child event: wake the parked orchestrator
                at.client_event.fail(
                    TraversalFailed(at.travel_id, "coordinator crashed")
                )
        self._active.clear()
        self._composites.clear()

    def begin_epoch(
        self, epoch: int, *, next_travel_id: Optional[int] = None
    ) -> None:
        """Start a new coordinator incarnation during recovery.

        Re-seeds the travel-id allocator past the journal's high-water mark
        (surviving registry entries make reuse an error) and moves the
        exec-id allocator into an epoch-disjoint range so replayed trace
        DAGs never alias executions across incarnations.
        """
        self.epoch = epoch
        if next_travel_id is not None:
            self._travel_ids = IdAllocator(max(next_travel_id, 1))
        self._next_exec = IdAllocator(((self.ctx.nservers + 1) << 32) + (epoch << 40))
        self.metrics.count("coord.recover")
        self.trace.record(
            "coord.recover", server_id=self.ctx.server_id, epoch=epoch
        )

    def resume_travel(
        self,
        travel_id: TravelId,
        *,
        client_event: object,
        submit_time: float,
        planned: Optional[PlannedQuery] = None,
    ) -> bool:
        """Restart one in-doubt linear traversal after a coordinator crash.

        The executed plan lives in the surviving cluster-shared registry
        (the paper ships the plan inside every dispatch); the journal's
        dispatch record supplies QoS context and the planner audit trail so
        level remapping of reversed plans survives recovery. The restart
        reuses the PR-2 path: bump the attempt (quiescing every pre-crash
        execution), reset the stats board, re-dispatch, new watchdog.
        Returns False when the registry no longer knows the travel.
        """
        entry = self.registry.get(travel_id)
        if entry is None:
            return False
        attempt = self.registry.bump_attempt(travel_id)
        entry.epoch = self.epoch
        tracker: Union[ExecTracker, SyncBarrierState]
        tracker = (
            SyncBarrierState(attempt=attempt)
            if self.is_sync
            else ExecTracker(attempt=attempt)
        )
        at = ActiveTravel(
            travel_id=travel_id,
            entry=entry,
            submit_time=submit_time,
            client_event=client_event,
            tracker=tracker,
            planned=planned,
        )
        self._active[travel_id] = at
        self.board.reset(travel_id)
        self.board.stats(travel_id).restarts = attempt
        self.metrics.count("coord.resumed")
        self.trace.record(
            "coord.replay",
            travel_id=travel_id,
            server_id=self.ctx.server_id,
            attempt=attempt,
            epoch=self.epoch,
        )
        if self.journal is not None:
            self.journal.append(
                "dispatch",
                tid=travel_id,
                plan=entry.plan,
                attempt=attempt,
                epoch=self.epoch,
                composite=False,
                child_of=None,
                submit_time=submit_time,
                planned=planned,
            )
        at.tracker.last_activity = self.ctx.now()
        self._dispatch(at)
        self.ctx.spawn(self._watchdog(at), name=f"watchdog-{travel_id}")
        return True

    def resume_composite(
        self,
        travel_id: TravelId,
        plan: CompositePlan,
        *,
        client_event: object,
        submit_time: float,
    ) -> None:
        """Respawn a composite's orchestrator after a coordinator crash.

        The program restarts from its first child (children are cheap
        linear traversals and the program is deterministic, so the result
        is element-identical); pre-crash children were cleaned up by the
        recovery supervisor and their in-flight traffic is epoch-fenced.
        """
        ct = CompositeTravel(
            travel_id=travel_id,
            plan=plan,
            client_event=client_event,
            submit_time=submit_time,
            stats=TraversalStats(engine=self.engine_kind),
        )
        ct.stats.restarts += 1
        self._composites[travel_id] = ct
        self.metrics.count("coord.resumed")
        self.trace.record(
            "coord.replay",
            travel_id=travel_id,
            server_id=self.ctx.server_id,
            epoch=self.epoch,
            composite=True,
        )
        if self.journal is not None:
            self.journal.append(
                "dispatch",
                tid=travel_id,
                plan=plan,
                attempt=0,
                epoch=self.epoch,
                composite=True,
                child_of=None,
                submit_time=submit_time,
                planned=None,
            )
        self.ctx.spawn(self._orchestrate(ct), name=f"composite-{travel_id}")

    def cleanup_travel(self, travel_id: TravelId) -> None:
        """Recovery-time disposal of a travel that will not be resumed
        (e.g. a pre-crash composite child whose parent restarts from
        scratch): drop registry/engine/channel/board state so nothing
        leaks. Stale in-flight executions quiesce through the registry
        check as usual."""
        self.registry.unregister(travel_id)
        self.board.pop(travel_id)
        if self.on_complete is not None:
            self.on_complete(travel_id)

    # -- plumbing -----------------------------------------------------------------------------

    def _journal_terminal(self, travel_id: TravelId, status: str) -> None:
        if self.journal is not None:
            self.journal.append("terminal", tid=travel_id, status=status)

    def _journal_progress(
        self, at: ActiveTravel, *, statuses: int = 0, results: int = 0
    ) -> None:
        """Batch per-travel progress deltas into one journal record per ~32
        fresh reports — the journal stays an audit of forward progress
        without paying a durable append per status message."""
        if self.journal is None:
            return
        at.pend_statuses += statuses
        at.pend_results += results
        if at.pend_statuses + at.pend_results >= 32:
            self.journal.append(
                "progress",
                tid=at.travel_id,
                statuses=at.pend_statuses,
                results=at.pend_results,
            )
            at.pend_statuses = 0
            at.pend_results = 0

    def _send(self, travel_id: TravelId, dst: ServerId, msg: Message) -> None:
        msg.epoch = self.epoch
        self.board.message(travel_id, msg.nbytes)
        self.ctx.send(dst, msg)


def _merge_child_stats(agg: TraversalStats, child: TraversalStats) -> None:
    """Fold one child traversal's counters into the composite's totals.

    ``elapsed`` is deliberately untouched — the composite stamps its own
    end-to-end elapsed time; summing per-child elapsed would double-count
    the client hops each child's completion charged.
    """
    agg.real_io_visits += child.real_io_visits
    agg.combined_visits += child.combined_visits
    agg.redundant_visits += child.redundant_visits
    agg.messages += child.messages
    agg.bytes_sent += child.bytes_sent
    agg.barrier_rounds += child.barrier_rounds
    agg.executions += child.executions
    agg.restarts += child.restarts
    agg.replays += child.replays
    agg.result_chunks += child.result_chunks
    for server, counts in child.per_server.items():
        bucket = agg.per_server.setdefault(server, {})
        for kind, n in counts.items():
            bucket[kind] = bucket.get(kind, 0) + n
