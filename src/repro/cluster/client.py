"""Client facade: the user-side entry point the paper's Fig. 2(b) shows.

A thin convenience over :class:`~repro.cluster.cluster.Cluster` that keeps a
submission history and exposes paper-style helpers. All heavy lifting is
server-side; the client only ships the GTravel instance and waits for the
reply (that asymmetry is the point of server-side traversal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cluster.cluster import Cluster
from repro.engine.base import TraversalOutcome
from repro.errors import TraversalFailed
from repro.ids import TravelId
from repro.lang.gtravel import GTravel, union_results
from repro.lang.plan import TraversalPlan


@dataclass
class SubmissionRecord:
    travel_id: TravelId
    plan: TraversalPlan
    outcome: Optional[TraversalOutcome] = None


def _lost_to_crash(event) -> bool:
    """True when a triggered event failed because the submission never
    became durable (died before its journal ``admit`` record) — the only
    outcome a client may safely retry without risking a double run."""
    exc = getattr(event, "_exc", None)
    return isinstance(exc, TraversalFailed) and "lost in coordinator crash" in str(exc)


@dataclass
class GraphTrekClient:
    """A client session against one cluster."""

    cluster: Cluster
    history: list[SubmissionRecord] = field(default_factory=list)
    #: idempotency key -> (travel_id, completion event) of the attempt that
    #: owns the key; see :meth:`submit_idempotent`
    sessions: dict = field(default_factory=dict)

    def query(
        self,
        query: Union[GTravel, TraversalPlan],
        *,
        cold: bool = False,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> TraversalOutcome:
        """Submit a traversal and block until the result returns.

        QoS attributes pass straight to the scheduler: ``tenant`` for fair
        queueing/quotas, ``priority`` for the priority policy, ``deadline``
        (seconds) for cancellation — which surfaces here as
        :class:`~repro.errors.TraversalCancelled`."""
        plan = query.compile() if isinstance(query, GTravel) else query
        record = SubmissionRecord(travel_id=-1, plan=plan)
        travel_id, event = self.cluster.submit(
            plan, tenant=tenant, priority=priority, deadline=deadline
        )
        record.travel_id = travel_id
        if cold:
            # cold must be requested before submission to matter; the
            # cluster-level API handles that ordering.
            pass
        outcome = self.cluster.runtime.run_until_complete(event)
        record.outcome = outcome
        self.history.append(record)
        return outcome

    def submit_idempotent(
        self,
        query: Union[GTravel, TraversalPlan],
        *,
        key: str,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> tuple[TravelId, object]:
        """Submit with at-most-once semantics per idempotency ``key``.

        A repeat call with the same key returns the original submission's
        ``(travel_id, event)`` — whether it is still running or already
        finished — so a client retrying across a coordinator crash can
        never double-run an acknowledged traversal. The one case a fresh
        submission is made for a known key is when the previous attempt was
        *lost before becoming durable* (its event failed with the
        pre-durability :class:`~repro.errors.TraversalFailed`): the journal
        holds no trace of it, so resubmission is side-effect free. This is
        the client half of the journal's acknowledged-once contract
        (DESIGN.md §13).
        """
        pending = self.sessions.get(key)
        if pending is not None:
            _, event = pending
            if not (event.triggered and _lost_to_crash(event)):
                return pending
        plan = query.compile() if isinstance(query, GTravel) else query
        travel_id, event = self.cluster.submit(
            plan, tenant=tenant, priority=priority, deadline=deadline
        )
        self.sessions[key] = (travel_id, event)
        return travel_id, event

    def query_idempotent(
        self,
        query: Union[GTravel, TraversalPlan],
        *,
        key: str,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> TraversalOutcome:
        """:meth:`query` with an idempotency key: blocks on (and records)
        whichever submission owns ``key``."""
        plan = query.compile() if isinstance(query, GTravel) else query
        travel_id, event = self.submit_idempotent(
            plan, key=key, tenant=tenant, priority=priority, deadline=deadline
        )
        outcome = self.cluster.runtime.run_until_complete(event)
        self.history.append(
            SubmissionRecord(travel_id=travel_id, plan=plan, outcome=outcome)
        )
        return outcome

    def profile(
        self, query: Union[GTravel, TraversalPlan], *, cold: bool = False
    ):
        """Run a traversal with the flight recorder on and return its
        :class:`~repro.obs.explain.ProfileReport` (the Gremlin-style
        ``profile()`` step). The outcome joins the history as usual; a
        traversal that fails terminally still yields a report whose trace
        ends in the ``travel.failed`` event."""
        outcome, report = self.cluster.profile(query, cold=cold)
        if outcome is not None:
            plan = query.compile() if isinstance(query, GTravel) else query
            self.history.append(
                SubmissionRecord(
                    travel_id=outcome.result.travel_id, plan=plan, outcome=outcome
                )
            )
        return report

    def query_union(self, *queries: Union[GTravel, TraversalPlan]) -> tuple[int, ...]:
        """OR-composition helper: run each traversal, union returned vertices
        (the paper's workaround for the missing OR filter). Returns the
        canonical sorted tuple so reruns are byte-identical; prefer the
        server-side ``union(...)`` operator for new code."""
        outcomes = [self.query(q) for q in queries]
        return union_results(*(o.result.vertices for o in outcomes))

    def last_stats(self):
        if not self.history or self.history[-1].outcome is None:
            return None
        return self.history[-1].outcome.stats
