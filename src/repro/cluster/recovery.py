"""Coordinator crash recovery: the supervisor that turns a durable journal
into a running coordinator again.

The paper's fault story covers backend servers (RocksDB on GPFS survives
them) but treats the coordinator as always-up. This module closes that gap
for the control plane (DESIGN.md §13): the :class:`RecoverySupervisor`
models the part of the deployment that *survives* a coordinator crash — the
client session table and the GPFS-backed journal — and drives recovery when
the coordinator's host comes back:

1. replay the journal (:class:`~repro.cluster.journal.TraversalJournal`)
   into the reduced queued/running/terminal state;
2. start the next coordinator **epoch** (journaled first, so a second crash
   during recovery still fences the first epoch's traffic);
3. dispose of pre-crash composite children (their parents restart the
   composite program from scratch);
4. resume every in-doubt running traversal through the PR-2 fine-grained
   replay path, re-binding the surviving client completion event;
5. readmit journaled-but-never-launched traversals into the scheduler in
   their original admission order, with deadlines re-armed on remaining
   time;
6. fail the completion event of anything the journal says was alive but
   cannot be restored — the client sees an explicit
   :class:`~repro.errors.TraversalFailed`, never a hang.

Idempotent resubmission falls out of this design: a submission is
acknowledged only after its ``admit`` record is durable, so a client that
saw the acknowledgement never needs to resubmit (the travel is either
restored or explicitly failed), and one that did not can resubmit without
double-running anything — the lost attempt left no durable state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import TraversalFailed
from repro.ids import COORDINATOR, ServerId, TravelId


@dataclass
class ClientBinding:
    """One live submission's client-side state (survives coordinator loss)."""

    client_event: Any
    tenant: str = "default"
    priority: Optional[int] = None
    deadline_abs: Optional[float] = None
    admit_time: float = 0.0


class RecoverySupervisor:
    """Crash/recovery listener pair for the coordinator's host.

    Holds the travel-id → client-event bindings (the in-process stand-in
    for client sessions that outlive the coordinator process) and rebuilds
    coordinator + scheduler state from the journal when the host recovers.
    """

    def __init__(
        self, runtime, coordinator, scheduler, journal, channel=None,
        migrator=None,
    ):
        self.runtime = runtime
        self.coordinator = coordinator
        self.scheduler = scheduler
        self.journal = journal
        self.channel = channel
        self.migrator = migrator
        self.metrics = coordinator.metrics
        self.trace = coordinator.trace
        self._bindings: dict[TravelId, ClientBinding] = {}
        self._host = runtime.coordinator_server
        # chain terminal notifications after the scheduler's handler so the
        # binding table tracks live travels only
        inner = coordinator.on_terminal

        def _terminal(travel_id: TravelId, status: str) -> None:
            if inner is not None:
                inner(travel_id, status)
            self._bindings.pop(travel_id, None)

        coordinator.on_terminal = _terminal
        runtime.add_crash_listener(self.on_server_crash)
        runtime.add_recovery_listener(self.on_server_recover)

    # -- client bookkeeping --------------------------------------------------

    def note_submission(
        self,
        travel_id: TravelId,
        client_event: Any,
        *,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline_abs: Optional[float] = None,
        admit_time: float = 0.0,
    ) -> None:
        """Record a live submission's client binding (called by
        ``Cluster.submit`` once the scheduler acknowledged admission)."""
        self._bindings[travel_id] = ClientBinding(
            client_event=client_event,
            tenant=tenant,
            priority=priority,
            deadline_abs=deadline_abs,
            admit_time=admit_time,
        )

    @property
    def live_bindings(self) -> int:
        return len(self._bindings)

    # -- crash side ----------------------------------------------------------

    def on_server_crash(self, server: ServerId) -> None:
        if server != self._host:
            return
        self.coordinator.on_host_crash()
        self.scheduler.on_host_crash()
        if self.channel is not None:
            self.channel.on_coordinator_crash()
        if self.migrator is not None:
            self.migrator.on_coordinator_crash()

    # -- recovery side -------------------------------------------------------

    def on_server_recover(self, server: ServerId) -> None:
        if server != self._host:
            return
        with self.runtime.exclusive(self._host):
            self._recover()

    def _recover(self) -> None:
        state = self.journal.replay()
        epoch = state.epoch + 1
        # journal the epoch bump BEFORE resuming anything: a second crash
        # mid-recovery must still see (and fence against) this epoch
        self.journal.append("epoch", epoch=epoch)
        self.coordinator.begin_epoch(epoch, next_travel_id=state.next_travel_id)
        if self.channel is not None:
            self.channel.coordinator_epoch = epoch
            # reset coordinator-destined connections a second time: senders
            # kept queueing dead-epoch frames while the host was down, and
            # the fence will never ack them
            self.channel.on_coordinator_crash()

        # re-establish shard ownership BEFORE any traversal resumes: every
        # resumed dispatch routes through the rebuilt table, so committed
        # cutovers stay committed and half-done migrations roll back first
        if self.migrator is not None:
            self.migrator.recover(dict(state.migrations))

        # pre-crash composite children are not resumed: the parent restarts
        # its (deterministic) program from scratch, so dispose of them and
        # let their stale in-flight executions quiesce via attempt/epoch
        restored: set[TravelId] = set()
        for tid in sorted(state.running):
            record = state.running[tid]
            if record.get("child_of") is not None:
                self.coordinator.cleanup_travel(tid)
                self.journal.append("terminal", tid=tid, status="orphaned")
                restored.add(tid)

        # resume in-doubt running travels (launch order = travel-id order)
        for tid in sorted(state.running):
            record = state.running[tid]
            if tid in restored:
                continue
            binding = self._bindings.get(tid)
            if binding is None or binding.client_event.triggered:
                # no live client waits on this travel; drop it cleanly
                self.coordinator.cleanup_travel(tid)
                self.journal.append("terminal", tid=tid, status="orphaned")
                restored.add(tid)
                continue
            if record.get("composite"):
                self.coordinator.resume_composite(
                    tid,
                    record["plan"],
                    client_event=binding.client_event,
                    submit_time=record["submit_time"],
                )
                ok = True
            else:
                ok = self.coordinator.resume_travel(
                    tid,
                    client_event=binding.client_event,
                    submit_time=record["submit_time"],
                    planned=record.get("planned"),
                )
            if ok:
                self.scheduler.restore_inflight(
                    tid,
                    record["plan"],
                    client_event=binding.client_event,
                    tenant=binding.tenant,
                    priority=binding.priority,
                    deadline_abs=binding.deadline_abs,
                    admit_time=binding.admit_time,
                )
            else:
                self.metrics.count("coord.lost")
                self.journal.append("terminal", tid=tid, status="failed")
                binding.client_event.fail(
                    TraversalFailed(tid, "unrecoverable after coordinator crash")
                )
                self._bindings.pop(tid, None)
            restored.add(tid)

        # readmit never-launched travels in original admission order
        for tid in sorted(
            state.queued, key=lambda t: state.queued[t].get("seq", t)
        ):
            record = state.queued[tid]
            binding = self._bindings.get(tid)
            if binding is None or binding.client_event.triggered:
                self.journal.append("terminal", tid=tid, status="orphaned")
                continue
            self.scheduler.readmit(
                tid,
                record["plan"],
                client_event=binding.client_event,
                tenant=record.get("tenant", binding.tenant),
                priority=record.get("priority", binding.priority),
                deadline_abs=record.get("deadline", binding.deadline_abs),
                admit_time=record.get("admit_time", binding.admit_time),
            )
            restored.add(tid)

        # anything the client still waits on that the journal does not know
        # died before its admit record became durable: fail it explicitly
        for tid in sorted(self._bindings):
            if tid in restored:
                continue
            binding = self._bindings[tid]
            if binding.client_event.triggered:
                continue
            self.metrics.count("coord.lost")
            binding.client_event.fail(
                TraversalFailed(tid, "lost in coordinator crash")
            )
            self._bindings.pop(tid, None)
