"""Durable traversal journal: the coordinator's write-ahead log.

The paper keeps backend stores crash-safe by running RocksDB on GPFS "for
fault tolerance against server failures" (§VII) but leaves the coordinator's
travel bookkeeping in memory. This module extends the same durability story
to the control plane: every coordinator state transition — scheduler
admission, launch, dispatch (with the executed plan), batched progress
deltas, terminal outcomes, epoch bumps — is appended to a journal *before*
the transition's side effects run, so a crashed coordinator can rebuild
what was queued, what was running, and what already finished.

Records use the framed format shared with checkpoints
(:func:`repro.storage.persist.pack_record`): ``[u32 len][u32 crc32]``
followed by a pickled dict with a ``kind`` discriminator. A torn or
bit-rotted record raises the typed
:class:`~repro.errors.CorruptJournal` on replay.

The journal compacts itself: every ``checkpoint_interval`` appended records
it rewrites the backing storage as a single ``checkpoint`` record carrying
the reduced :class:`JournalState`, bounding replay work and journal size by
the number of *live* travels rather than the traversal history.

Storage backends model where the bytes live:

* :class:`MemoryJournalStorage` — bytes that survive the coordinator
  process (the simulated stand-in for a GPFS-backed journal file);
* :class:`FileJournalStorage` — a real file, for tests and offline
  inspection.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Protocol, Union

from repro.errors import CorruptJournal
from repro.storage.persist import iter_records, pack_record


class JournalStorage(Protocol):
    """Durable byte sink for the journal. Appends must be atomic at record
    granularity (the simulated crash model guarantees this; a real
    implementation would fsync)."""

    def append(self, data: bytes) -> None: ...

    def read(self) -> bytes: ...

    def reset(self, data: bytes) -> None: ...


class MemoryJournalStorage:
    """Journal bytes held in memory but *outside* the coordinator's crash
    blast radius — the in-process model of a shared-filesystem journal."""

    def __init__(self, initial: bytes = b""):
        self._buf = bytearray(initial)

    def append(self, data: bytes) -> None:
        self._buf.extend(data)

    def read(self) -> bytes:
        return bytes(self._buf)

    def reset(self, data: bytes) -> None:
        self._buf = bytearray(data)

    def __len__(self) -> int:
        return len(self._buf)


class FileJournalStorage:
    """Journal bytes in a real file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            self.path.write_bytes(b"")

    def append(self, data: bytes) -> None:
        with self.path.open("ab") as fh:
            fh.write(data)

    def read(self) -> bytes:
        return self.path.read_bytes()

    def reset(self, data: bytes) -> None:
        self.path.write_bytes(data)

    def __len__(self) -> int:
        return self.path.stat().st_size


@dataclass
class JournalState:
    """The reduced state a journal replay yields.

    ``queued`` maps travel id to its ``admit`` record (admitted by the
    scheduler, never launched). ``running`` maps travel id to its
    ``dispatch`` record (launched / directly submitted, no terminal yet) —
    including composite parents (``composite`` True) and their children
    (``child_of`` set). ``terminals`` counts finished travels by status.
    """

    epoch: int = 0
    next_travel_id: int = 1
    queued: dict[int, dict] = field(default_factory=dict)
    running: dict[int, dict] = field(default_factory=dict)
    terminals: dict[str, int] = field(default_factory=dict)
    #: live shard migrations: mid -> latest ``migration`` record (terminal
    #: records — ``aborted`` — remove the entry; ``done`` stays so recovery
    #: can idempotently re-apply its ownership override)
    migrations: dict[int, dict] = field(default_factory=dict)
    #: highest routing-table version any migration record carried; recovery
    #: restores the table past it so versions stay monotonic across crashes
    routing_version: int = 0

    def note_travel_id(self, travel_id: int) -> None:
        if travel_id + 1 > self.next_travel_id:
            self.next_travel_id = travel_id + 1

    def as_payload(self) -> dict:
        return {
            "epoch": self.epoch,
            "next_travel_id": self.next_travel_id,
            "queued": dict(self.queued),
            "running": dict(self.running),
            "terminals": dict(self.terminals),
            "migrations": dict(self.migrations),
            "routing_version": self.routing_version,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalState":
        return cls(
            epoch=payload.get("epoch", 0),
            next_travel_id=payload.get("next_travel_id", 1),
            queued=dict(payload.get("queued", {})),
            running=dict(payload.get("running", {})),
            terminals=dict(payload.get("terminals", {})),
            migrations=dict(payload.get("migrations", {})),
            routing_version=payload.get("routing_version", 0),
        )


class TraversalJournal:
    """Append-only WAL of coordinator state transitions with compacting
    checkpoints.

    ``append(kind, **fields)`` frames and durably appends one record, then
    folds it into the journal's live :class:`JournalState` mirror (the same
    fold :meth:`replay` applies, so the mirror and a cold replay always
    agree). Record kinds:

    ``admit``     scheduler admission: tid, original plan, tenant,
                  priority, absolute deadline, admit_time, seq
    ``launch``    scheduler launched the travel (audit only)
    ``dispatch``  coordinator accepted a submit: tid, executed plan,
                  attempt, epoch, composite flag, child_of, submit_time
    ``progress``  batched exec-tracker deltas for a running travel
    ``terminal``  travel finished: tid, status (ok/failed/cancelled)
    ``epoch``     a recovered coordinator started this epoch
    ``migration`` a shard migration's phase transition: mid, phase
                  (copy/dual/cutover/done/aborted), src, dst, vids, and
                  the routing-table version the step commits
    ``checkpoint`` compaction snapshot (written by the journal itself)
    """

    def __init__(
        self,
        storage: Optional[JournalStorage] = None,
        *,
        checkpoint_interval: int = 256,
    ):
        self.storage: JournalStorage = (
            storage if storage is not None else MemoryJournalStorage()
        )
        self.checkpoint_interval = checkpoint_interval
        #: lifetime counters (survive compaction; used by the bench ablation)
        self.records_appended = 0
        self.bytes_appended = 0
        self.checkpoints_written = 0
        self._since_checkpoint = 0
        self._state = self._replay_bytes(self.storage.read())

    # -- writing ---------------------------------------------------------------

    def append(self, kind: str, **fields) -> None:
        record = {"kind": kind, **fields}
        framed = pack_record(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        self.storage.append(framed)
        self.records_appended += 1
        self.bytes_appended += len(framed)
        self._fold(self._state, record)
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_interval:
            self.compact()

    def compact(self) -> None:
        """Rewrite the storage as one checkpoint record of the live state."""
        record = {"kind": "checkpoint", "state": self._state.as_payload()}
        framed = pack_record(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        self.storage.reset(framed)
        self.checkpoints_written += 1
        self._since_checkpoint = 0

    # -- reading ---------------------------------------------------------------

    def replay(self) -> JournalState:
        """Rebuild state from the durable bytes (what a recovering
        coordinator sees). Raises :class:`CorruptJournal` on a damaged
        record."""
        self._state = self._replay_bytes(self.storage.read())
        return self._state

    @property
    def state(self) -> JournalState:
        """The live mirror (identical to what :meth:`replay` would return)."""
        return self._state

    def size_bytes(self) -> int:
        return len(self.storage.read())

    def _replay_bytes(self, data: bytes) -> JournalState:
        state = JournalState()
        for payload in iter_records(data, CorruptJournal):
            try:
                record = pickle.loads(payload)
            except Exception as exc:
                raise CorruptJournal(f"undecodable journal record: {exc}") from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise CorruptJournal("journal record is not a kind-tagged dict")
            self._fold(state, record)
        return state

    # -- the fold --------------------------------------------------------------

    @staticmethod
    def _fold(state: JournalState, record: dict) -> None:
        kind = record["kind"]
        if kind == "checkpoint":
            restored = JournalState.from_payload(record["state"])
            state.epoch = restored.epoch
            state.next_travel_id = restored.next_travel_id
            state.queued = restored.queued
            state.running = restored.running
            state.terminals = restored.terminals
            state.migrations = restored.migrations
            state.routing_version = restored.routing_version
        elif kind == "admit":
            tid = record["tid"]
            state.note_travel_id(tid)
            state.queued[tid] = record
        elif kind == "launch":
            pass  # audit only; the dispatch record that follows moves state
        elif kind == "dispatch":
            tid = record["tid"]
            state.note_travel_id(tid)
            qos = state.queued.pop(tid, None)
            entry = dict(record)
            if qos is not None:
                entry["qos"] = qos
            state.running[tid] = entry
        elif kind == "progress":
            tid = record["tid"]
            entry = state.running.get(tid)
            if entry is not None:
                prog = entry.setdefault("progress", {})
                for key in ("statuses", "results"):
                    if key in record:
                        prog[key] = prog.get(key, 0) + record[key]
        elif kind == "terminal":
            tid = record["tid"]
            state.queued.pop(tid, None)
            state.running.pop(tid, None)
            status = record.get("status", "ok")
            state.terminals[status] = state.terminals.get(status, 0) + 1
        elif kind == "epoch":
            state.epoch = record["epoch"]
        elif kind == "migration":
            mid = record["mid"]
            state.routing_version = max(
                state.routing_version, record.get("version", 0)
            )
            if record.get("phase") == "aborted":
                state.migrations.pop(mid, None)
            else:
                state.migrations[mid] = record
        else:
            raise CorruptJournal(f"unknown journal record kind {kind!r}")
