"""A backend server: storage plus traversal engine, bound to one context."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.engine.async_engine import AsyncServerEngine
from repro.engine.sync_engine import SyncServerEngine
from repro.ids import ServerId
from repro.runtime.base import ServerContext
from repro.storage.layout import GraphStore

ServerEngine = Union[AsyncServerEngine, SyncServerEngine]


@dataclass
class BackendServer:
    """One node of the cluster, for introspection by tests and benches."""

    server_id: ServerId
    ctx: ServerContext
    store: GraphStore
    engine: ServerEngine

    @property
    def vertex_count(self) -> int:
        return self.store.vertex_count()

    @property
    def queue_length(self) -> int:
        return self.engine.queue_length if hasattr(self.engine, "queue_length") else 0

    def storage_metrics(self) -> dict[str, int]:
        """This server's storage counters (LSM / block cache / bloom)."""
        return self.store.metrics_snapshot()
