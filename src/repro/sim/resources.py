"""Shared-resource primitives for the simulation kernel.

* :class:`Resource` — a counted resource (disk heads, worker slots). Requests
  queue FIFO, or by priority when ``priority=True``.
* :class:`Store` — an unbounded FIFO queue of items with blocking ``get``.
* :class:`PriorityStore` — a store whose ``get`` returns the smallest item
  first; used by the GraphTrek execution scheduler (smallest step id wins).

All waiting is expressed as events, so processes compose naturally::

    req = disk.request()
    yield req
    try:
        yield sim.timeout(cost)
    finally:
        disk.release(req)
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: float):
        super().__init__(resource.sim, name=f"request({resource.name})")
        self.resource = resource
        self.priority = priority


class Resource:
    """A counted resource with ``capacity`` concurrent holders.

    ``request()`` returns an event that triggers when a slot is granted;
    ``release(req)`` frees it. With ``priority=True``, waiting requests are
    granted in ascending priority order (ties FIFO).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 1,
        *,
        priority: bool = False,
        name: str = "resource",
    ):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._priority = priority
        self._in_use = 0
        self._seq = 0
        self._waiting: list[tuple[float, int, Request]] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: float = 0.0) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        req = Request(self, priority)
        if self._in_use < self.capacity and not self._waiting:
            self._in_use += 1
            req.succeed(req)
        else:
            self._seq += 1
            key = priority if self._priority else 0.0
            heapq.heappush(self._waiting, (key, self._seq, req))
        return req

    def release(self, req: Request) -> None:
        """Free the slot held by ``req`` and grant the next waiter."""
        if req.resource is not self:
            raise SimulationError("release() of a request from another resource")
        if not req.triggered:
            # Cancelled before being granted: drop it from the wait queue.
            self._waiting = [w for w in self._waiting if w[2] is not req]
            heapq.heapify(self._waiting)
            req.succeed(req)  # unblock any waiter, as a no-op grant
            return
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiting and self._in_use < self.capacity:
            _, _, nxt = heapq.heappop(self._waiting)
            self._in_use += 1
            nxt.succeed(nxt)

    def acquire(self, priority: float = 0.0) -> Generator[Event, Any, Request]:
        """Generator helper: ``req = yield from resource.acquire()``."""
        req = self.request(priority)
        yield req
        return req


class Store:
    """Unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks. ``get()`` returns an event that triggers with the
    next item as soon as one is available.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: list[Any] = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, name=f"get({self.name})")
        if self._items:
            ev.succeed(self._items.pop(0))
        else:
            self._getters.append(ev)
        return ev

    def peek_items(self) -> list[Any]:
        """Snapshot of queued items (no removal); for tests/metrics."""
        return list(self._items)


class PriorityStore(Store):
    """A :class:`Store` whose ``get`` returns the smallest item first.

    Items must be orderable (the engine queues ``(priority, seq, payload)``
    tuples). The waiting-getter path is identical to :class:`Store`.
    """

    def __init__(self, sim: Simulator, name: str = "pstore"):
        super().__init__(sim, name)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            heapq.heappush(self._items, item)

    def get(self) -> Event:
        ev = Event(self.sim, name=f"get({self.name})")
        if self._items:
            ev.succeed(heapq.heappop(self._items))
        else:
            self._getters.append(ev)
        return ev

    def drain_matching(self, pred) -> list[Any]:
        """Remove and return every queued item for which ``pred`` holds.

        Used by execution merging: the worker pulls all queued requests that
        touch the vertex it is about to read so one disk access serves them
        all. Heap order among the remaining items is preserved.
        """
        kept, taken = [], []
        for item in self._items:
            (taken if pred(item) else kept).append(item)
        if taken:
            self._items = kept
            heapq.heapify(self._items)
        return taken


class TokenBucket:
    """Simple rate limiter: ``cost`` units consumed per use at ``rate``/sec.

    Not used by the core engines, but available for modelling bandwidth
    shares in workloads that add background traffic.
    """

    def __init__(self, sim: Simulator, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise SimulationError("rate and burst must be positive")
        self.sim = sim
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def delay_for(self, cost: float) -> float:
        """Virtual seconds a consumer of ``cost`` units must wait."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        deficit = cost - self._tokens
        self._tokens = 0.0
        return deficit / self.rate
