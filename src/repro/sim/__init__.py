"""Discrete-event simulation kernel (SimPy-like, dependency-free).

Public surface:

* :class:`~repro.sim.core.Simulator`, :class:`~repro.sim.core.Event`,
  :class:`~repro.sim.core.Process`, :class:`~repro.sim.core.Timeout`
* :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.PriorityStore`
* :class:`~repro.sim.rng.RngRegistry` for named seeded random streams
* :class:`~repro.sim.trace.Tracer` / :class:`~repro.sim.trace.MetricSet`
"""

from repro.sim.core import AllOf, AnyOf, Event, Interrupt, Process, Simulator, Timeout
from repro.sim.resources import PriorityStore, Request, Resource, Store, TokenBucket
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import MetricSet, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "PriorityStore",
    "Request",
    "Resource",
    "Store",
    "TokenBucket",
    "RngRegistry",
    "derive_seed",
    "MetricSet",
    "TraceRecord",
    "Tracer",
]
