"""Named, seeded random streams.

Every stochastic component draws from its own named stream derived from a
single experiment seed, so adding a new random consumer never perturbs the
draws of existing ones — a standard reproducibility idiom for simulation
studies.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Hands out independent :class:`numpy.random.Generator` streams by name."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{name}"))
