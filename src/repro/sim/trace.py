"""Timestamped trace collection for simulations.

Engines and servers emit trace records (category + payload) through a
:class:`Tracer`; experiments post-process them into the statistics the paper
reports (per-server visit breakdowns, queue lengths, barrier waits).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: when, what, and arbitrary payload fields."""

    time: float
    category: str
    fields: dict[str, Any]


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by category.

    ``enabled_categories=None`` records everything; an empty set records
    nothing (cheap no-op for production benchmark runs).
    """

    def __init__(self, enabled_categories: Optional[set[str]] = None):
        self.enabled = enabled_categories
        self.records: list[TraceRecord] = []
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the time source (the simulator's ``now``)."""
        self._clock = clock

    def wants(self, category: str) -> bool:
        return self.enabled is None or category in self.enabled

    def emit(self, category: str, **fields: Any) -> None:
        if not self.wants(category):
            return
        self.records.append(TraceRecord(self._clock(), category, fields))

    # -- queries ---------------------------------------------------------

    def of(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def count_by(self, category: str, key: str) -> Counter:
        """Counter of ``fields[key]`` over records of ``category``."""
        counts: Counter = Counter()
        for rec in self.of(category):
            counts[rec.fields.get(key)] += 1
        return counts

    def series(self, category: str, key: str) -> list[tuple[float, Any]]:
        """(time, fields[key]) pairs, in emission order."""
        return [(r.time, r.fields.get(key)) for r in self.of(category)]

    def clear(self) -> None:
        self.records.clear()


@dataclass
class MetricSet:
    """A plain bag of additive counters keyed by (metric, label).

    Used for per-server statistics where full trace records would be too
    heavy: ``metrics.add("real_io_visit", server=3)``.
    """

    counts: dict[str, Counter] = field(default_factory=lambda: defaultdict(Counter))

    def add(self, metric: str, label: Any = None, n: int = 1) -> None:
        self.counts[metric][label] += n

    def get(self, metric: str, label: Any = None) -> int:
        return self.counts[metric][label]

    def total(self, metric: str) -> int:
        return sum(self.counts[metric].values())

    def labels(self, metric: str) -> Iterable[Any]:
        return self.counts[metric].keys()

    def merge(self, other: "MetricSet") -> None:
        for metric, counter in other.counts.items():
            self.counts[metric].update(counter)

    def as_dict(self) -> dict[str, dict[Any, int]]:
        return {m: dict(c) for m, c in self.counts.items()}
