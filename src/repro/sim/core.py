"""Discrete-event simulation kernel.

A minimal, dependency-free process-based simulator in the style of SimPy:

* :class:`Simulator` owns the virtual clock and the event heap.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` drives a generator; the generator ``yield``\\ s events
  (or :class:`Timeout`) and is resumed with the event's value when it
  triggers.

The kernel is deterministic: events scheduled for the same instant fire in
schedule order (a monotonically increasing sequence number breaks ties), so
every simulation run with the same seed reproduces the same trace.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

# A simulation process body: a generator that yields Events.
ProcessBody = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) triggers it
    exactly once, after which all registered callbacks run at the current
    simulation time. Processes wait on events by ``yield``\\ ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "triggered", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False
        self.name = name

    @property
    def value(self) -> Any:
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def failed(self) -> bool:
        return self.triggered and self._exc is not None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._value = value
        self.sim._queue_callbacks(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on it.
        """
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError("Event.fail() requires an exception")
        self.triggered = True
        self._exc = exc
        self.sim._queue_callbacks(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if it has)."""
        if self.triggered:
            # Deliver asynchronously to preserve run-to-completion semantics.
            self.sim.schedule(0.0, lambda: fn(self))
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        sim.schedule(delay, lambda: self.succeed(value))


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is a dict mapping the triggered events to their values at the
    moment this composite fired (late stragglers are ignored).
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.failed:
            self.fail(ev._exc)  # propagate first failure
            return
        done = {e: e._value for e in self._events if e.triggered and not e.failed}
        self.succeed(done)


class AllOf(Event):
    """Triggers when all of ``events`` have triggered.

    The value is a list of the child values in construction order.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            sim.schedule(0.0, lambda: self.succeed([]))
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.failed:
            self.fail(ev._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])


class Interrupt(Exception):
    """Raised inside a process when it is interrupted.

    Carries an arbitrary ``cause`` (e.g. a reason string).
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Process(Event):
    """Drives a generator as a simulation process.

    The process is itself an event that triggers with the generator's return
    value when it finishes, so processes can wait on other processes.
    """

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = "proc"):
        super().__init__(sim, name=name)
        if not hasattr(body, "send"):
            raise SimulationError(
                f"Process body must be a generator, got {type(body).__name__}"
            )
        self._body = body
        self._waiting_on: Optional[Event] = None
        # Kick off on the next scheduling round at the current time.
        sim.schedule(0.0, lambda: self._step(None, None))

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        target = self._waiting_on
        self._waiting_on = None
        # Detach from whatever we were waiting on; the stale callback is
        # ignored via the _waiting_on identity check in _resume.
        self.sim.schedule(0.0, lambda: self._step(None, Interrupt(cause)))
        _ = target  # kept for clarity; stale wakeups are filtered in _resume

    def _resume(self, ev: Event) -> None:
        if self.triggered or ev is not self._waiting_on:
            return  # stale wakeup (e.g. after an interrupt)
        self._waiting_on = None
        if ev.failed:
            self._step(None, ev._exc)
        else:
            self._step(ev._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        try:
            if exc is not None:
                target = self._body.throw(exc)
            else:
                target = self._body.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self._fail_noting_orphan(unhandled)
            return
        except Exception as err:
            self._fail_noting_orphan(err)
            return
        if not isinstance(target, Event):
            self._body.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}; "
                    "processes must yield Event instances"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _fail_noting_orphan(self, exc: BaseException) -> None:
        """Fail the process; if nothing is waiting on it, record the crash so
        the simulator can surface it instead of hanging silently (a dead
        worker loop would otherwise just stop consuming its queue)."""
        if not self.callbacks:
            self.sim.orphan_failures.append((self.name, exc))
        self.fail(exc)


class Simulator:
    """Owns the virtual clock, the event heap, and process creation.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False
        #: (process name, exception) of processes that crashed with no waiter
        self.orphan_failures: list[tuple[str, BaseException]] = []
        # boundary watcher: fn(now) runs when the clock first reaches the
        # threshold and returns the next threshold (inf = stop). Costs one
        # float compare per processed event — the telemetry plane uses it to
        # close rollup windows without any per-record work.
        self._boundary: float = float("inf")
        self._on_boundary: Optional[Callable[[float], float]] = None

    def set_boundary_watcher(
        self, fn: Optional[Callable[[float], float]], threshold: float = float("inf")
    ) -> None:
        """Install (or clear, with ``None``) the clock-boundary hook.

        ``fn(now)`` fires *before* the callback scheduled at ``now`` runs, so
        everything recorded strictly earlier is already settled; it returns
        the next threshold to watch for.
        """
        self._on_boundary = fn
        self._boundary = float("inf") if fn is None else threshold

    def _check_boundary(self, t: float) -> None:
        while t >= self._boundary:
            self._boundary = self._on_boundary(t)

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def _queue_callbacks(self, event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            self.schedule(0.0, lambda cb=cb: cb(event))

    # -- factories -----------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, body: ProcessBody, name: str = "proc") -> Process:
        return Process(self, body, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution -----------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 0) -> float:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time when the run stopped. ``max_events`` of 0
        means unlimited; it exists as a runaway guard for tests.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                t, _, fn = self._heap[0]
                if until is not None and t > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                if t < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event heap time went backwards")
                self.now = t
                if t >= self._boundary:
                    self._check_boundary(t)
                fn()
                processed += 1
                if max_events and processed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}"
                    )
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value.

        Raises :class:`SimulationError` if the heap drains first (deadlock)
        or the optional time ``limit`` passes.
        """
        while not event.triggered:
            if self.orphan_failures:
                name, exc = self.orphan_failures[0]
                raise SimulationError(
                    f"process {name!r} crashed with no waiter: {exc!r}"
                ) from exc
            if not self._heap:
                raise SimulationError(
                    f"deadlock: event {event.name!r} can never trigger"
                )
            t, _, fn = heapq.heappop(self._heap)
            if limit is not None and t > limit:
                heapq.heappush(self._heap, (t, 0, fn))
                raise SimulationError(
                    f"time limit {limit} passed before {event.name!r} triggered"
                )
            self.now = t
            if t >= self._boundary:
                self._check_boundary(t)
            fn()
        return event.value

    def peek(self) -> float:
        """Time of the next scheduled callback, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
